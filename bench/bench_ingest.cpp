// Gateway ingestion throughput benchmark: drives the IngestRuntime over the
// P1 (Mirai) capture with a trained OnlineKitsune per consumer, sweeping the
// consumer count (best of several repetitions per config); breaks the
// per-packet cost into extract / score / queue stages; checks that paced and
// unpaced replay of the same capture alert identically; and stresses a
// multi-consumer run over a fault-injecting source. Emits BENCH_ingest.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/ingest.h"
#include "core/kitsune_extractor.h"
#include "core/stream.h"
#include "features/table.h"
#include "ml/compiled.h"
#include "ml/forest.h"
#include "ml/gmm.h"
#include "ml/kernel.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "netio/frontend.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Run accounting scraped from telemetry counters (the IngestStats façade
// reads the same registry; the bench goes to the source).
struct RunCounters {
  uint64_t enqueued = 0;
  uint64_t dropped = 0;
  uint64_t parse_skipped = 0;
  uint64_t scored = 0;
  uint64_t alerted = 0;

  bool accounted() const {
    return scored + parse_skipped == enqueued - dropped;
  }
};

RunCounters scrape_counters(const lumen::telemetry::Snapshot& snap,
                            const std::string& prefix) {
  RunCounters c;
  c.enqueued = snap.counter_value(prefix + "enqueued");
  c.dropped = snap.counter_value(prefix + "dropped");
  c.parse_skipped = snap.counter_value(prefix + "parse_skipped");
  c.scored = snap.counter_value(prefix + "scored");
  c.alerted = snap.counter_value(prefix + "alerted");
  return c;
}

// Counter delta across one run against a shared (process) registry.
RunCounters counters_since(const RunCounters& before, const RunCounters& after) {
  RunCounters d;
  d.enqueued = after.enqueued - before.enqueued;
  d.dropped = after.dropped - before.dropped;
  d.parse_skipped = after.parse_skipped - before.parse_skipped;
  d.scored = after.scored - before.scored;
  d.alerted = after.alerted - before.alerted;
  return d;
}

struct ConfigResult {
  size_t consumers = 0;
  double seconds = 0.0;
  double achieved = 0.0;   // scored packets / wall seconds
  double sustained = 0.0;  // offered rate when kept up, else achieved
  bool kept_up = false;
  RunCounters counters;
};

constexpr int kReps = 7;           // best-of repetitions per timed section
constexpr int kSweepReps = 3;      // best-of repetitions per sweep config
constexpr int kStreamRepeats = 8;  // sweep stream = streamed region x repeats

// Offered load for the consumer sweep: 140k pkts/s, 2.24x the 62.5k pkts/s
// peak the pre-refactor runtime managed with a single consumer (and ~3.4x
// its 4-consumer rate). A configuration "keeps up" when it scores at >= 98%
// of the offered rate, i.e. the queue never becomes the bottleneck.
constexpr double kOfferedRate = 140000.0;

}  // namespace

int main() {
  using namespace lumen;
  std::printf("bench_ingest: gateway ingestion runtime throughput\n\n");

  const trace::Dataset ds = trace::make_dataset("P1", 1.0);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const size_t streamed = ds.trace.view.size() - grace;
  std::printf("capture: P1 x1.0, %zu packets (%zu grace / %zu streamed)\n",
              ds.trace.view.size(), grace, streamed);
  std::printf("threads: %zu (pool), %zu (hardware)\n",
              ThreadPool::global().size(), ThreadPool::hardware_threads());

  core::OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});
  std::printf("trained OnlineKitsune prototype (threshold %.4f)\n\n",
              proto.threshold());

  auto kitsune_factory = [&proto](size_t) {
    return std::make_unique<core::KitsuneScorer>(proto);
  };
  netio::ReplayOptions rest;
  rest.begin = grace;

  // Steady-state stream for the timed sections: the streamed region
  // repeated back-to-back (timestamps shifted so time stays monotonic).
  // A single pass lasts ~10 ms here, so fixed setup costs (thread spawn)
  // would otherwise dominate the consumer-count comparison.
  netio::Trace big;
  big.link = ds.trace.link;
  const double span = ds.trace.raw.back().ts - ds.trace.raw[grace].ts + 0.001;
  for (int rep = 0; rep < kStreamRepeats; ++rep) {
    for (size_t i = grace; i < ds.trace.raw.size(); ++i) {
      netio::RawPacket p = ds.trace.raw[i];
      p.ts += rep * span;
      big.raw.push_back(std::move(p));
    }
  }
  netio::parse_trace(big);
  const size_t sweep_packets = big.view.size();
  std::printf("sweep stream: streamed region x%d = %zu packets\n\n",
              kStreamRepeats, sweep_packets);

  // Per-stage packet cost. Stage boundaries are nested, so each stage's
  // marginal cost falls out by subtraction: extract-only, then
  // extract+score (OnlineKitsune), then the full 1-consumer runtime whose
  // extra cost is queue/thread overhead.
  double extract_ns = 0.0, score_ns = 0.0, queue_ns = 0.0;
  double unpaced_peak = 0.0;  // 1-consumer full-runtime drain rate
  double extract_s_best = 1e30;  // extract-only pass, reused by the online section
  {
    double extract_s = 1e30, scored_s = 1e30, runtime_s = 1e30;
    std::vector<double> row;
    for (int rep = 0; rep < kReps; ++rep) {
      core::KitsuneExtractor ex;
      const Clock::time_point t0 = Clock::now();
      for (const auto& view : big.view) ex.process(view, row);
      extract_s = std::min(extract_s, seconds_since(t0));
    }
    for (int rep = 0; rep < kReps; ++rep) {
      core::OnlineKitsune det = proto;
      const Clock::time_point t0 = Clock::now();
      for (const auto& view : big.view) det.score_packet(view);
      scored_s = std::min(scored_s, seconds_since(t0));
    }
    for (int rep = 0; rep < kReps; ++rep) {
      netio::TraceReplaySource src(big, netio::ReplayOptions{});
      core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                             nullptr);
      const Clock::time_point t0 = Clock::now();
      auto stats = rt.run(src);
      if (!stats.ok()) {
        std::fprintf(stderr, "stage ingest: %s\n",
                     stats.error().message.c_str());
        return 1;
      }
      runtime_s = std::min(runtime_s, seconds_since(t0));
    }
    const double n = static_cast<double>(sweep_packets);
    extract_s_best = extract_s;
    extract_ns = extract_s / n * 1e9;
    score_ns = std::max(0.0, (scored_s - extract_s) / n * 1e9);
    queue_ns = std::max(0.0, (runtime_s - scored_s) / n * 1e9);
    unpaced_peak = runtime_s > 0.0 ? n / runtime_s : 0.0;
    std::printf("per-packet cost: extract %.0f ns, score %.0f ns, "
                "queue+runtime %.0f ns\n",
                extract_ns, score_ns, queue_ns);
    std::printf("unpaced 1-consumer drain rate: %.0f pkts/s\n\n",
                unpaced_peak);
  }

  // Online micro-batch sweep: the same stream scored through the fused
  // OnlineKitsune::score_packets path in fixed-size micro-batches. Each
  // point is the score-only marginal ns/pkt (the extract-only pass above
  // subtracted out); batch 1 is the fused path driven row-at-a-time, the
  // apples-to-apples baseline the check_bench gate compares against.
  const size_t default_score_batch = core::IngestRuntime::Options{}.score_batch;
  struct OnlinePoint {
    size_t batch = 0;
    double ns = 0.0;
  };
  std::vector<OnlinePoint> online_sweep;
  double row_score_ns = 0.0, batched_score_ns = 0.0;
  {
    std::vector<double> scores(
        std::max<size_t>(default_score_batch, 64), 0.0);
    std::printf("online micro-batch sweep (score-only ns/pkt):\n");
    for (size_t b : {size_t{1}, size_t{8}, size_t{16}, size_t{32},
                     size_t{64}}) {
      double best = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        core::OnlineKitsune det = proto;
        const Clock::time_point t0 = Clock::now();
        for (size_t lo = 0; lo < big.view.size(); lo += b) {
          const size_t n = std::min(b, big.view.size() - lo);
          det.score_packets({big.view.data() + lo, n}, scores.data());
        }
        best = std::min(best, seconds_since(t0));
      }
      const double ns = std::max(
          0.0, (best - extract_s_best) / static_cast<double>(sweep_packets) *
                   1e9);
      online_sweep.push_back(OnlinePoint{b, ns});
      if (b == 1) row_score_ns = ns;
      if (b == default_score_batch) batched_score_ns = ns;
      std::printf("  score_batch=%-3zu %.0f ns/pkt\n", b, ns);
    }
    std::printf("  default (%zu): %.0f ns/pkt, %.2fx vs batch=1, "
                "%.2fx vs per-row scorer\n\n",
                default_score_batch, batched_score_ns,
                batched_score_ns > 0.0 ? row_score_ns / batched_score_ns : 0.0,
                batched_score_ns > 0.0 ? score_ns / batched_score_ns : 0.0);
  }

  // Compiled-plan online sweep: the same micro-batched score_packets loop
  // with the detector lowered through OnlineKitsune::compile() at each
  // precision. f64 plans must be bit-identical to the reference fused path
  // (same kernels replayed in the same order); f32/i8 trade a bounded score
  // divergence for speed. ns/pkt is the score-only marginal, like the sweep
  // above; divergence and alert identity are measured against the reference
  // path over the whole sweep stream at the calibrated threshold.
  struct CompiledPoint {
    const char* precision = nullptr;
    double ns = 0.0;
    double max_rel = 0.0;            // max relative score divergence vs ref
    bool alerts_identical = false;   // same alert set at proto threshold
    double speedup = 0.0;            // reference batched ns / compiled ns
  };
  std::vector<CompiledPoint> compiled_online;
  bool compiled_f64_identical = false;
  {
    const double thr = proto.threshold();
    std::vector<double> ref_scores(sweep_packets, 0.0);
    {
      core::OnlineKitsune det = proto;
      for (size_t lo = 0; lo < big.view.size(); lo += default_score_batch) {
        const size_t n = std::min(default_score_batch, big.view.size() - lo);
        det.score_packets({big.view.data() + lo, n}, ref_scores.data() + lo);
      }
    }
    std::vector<double> scores(default_score_batch, 0.0);
    std::vector<double> cmp_scores(sweep_packets, 0.0);
    std::printf("compiled online scoring (score-only ns/pkt, batch=%zu):\n",
                default_score_batch);
    for (ml::compiled::Precision p : {ml::compiled::Precision::kF64,
                                      ml::compiled::Precision::kF32,
                                      ml::compiled::Precision::kI8}) {
      CompiledPoint cp;
      cp.precision = ml::compiled::precision_name(p);
      double best = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        core::OnlineKitsune det = proto;
        if (auto c = det.compile(p); !c.ok()) {
          std::fprintf(stderr, "compile(%s): %s\n", cp.precision,
                       c.error().message.c_str());
          return 1;
        }
        const Clock::time_point t0 = Clock::now();
        for (size_t lo = 0; lo < big.view.size(); lo += default_score_batch) {
          const size_t n = std::min(default_score_batch, big.view.size() - lo);
          det.score_packets({big.view.data() + lo, n}, scores.data());
        }
        best = std::min(best, seconds_since(t0));
      }
      cp.ns = std::max(
          0.0, (best - extract_s_best) / static_cast<double>(sweep_packets) *
                   1e9);
      cp.speedup = cp.ns > 0.0 ? batched_score_ns / cp.ns : 0.0;
      {
        core::OnlineKitsune det = proto;
        (void)det.compile(p);
        for (size_t lo = 0; lo < big.view.size(); lo += default_score_batch) {
          const size_t n = std::min(default_score_batch, big.view.size() - lo);
          det.score_packets({big.view.data() + lo, n}, cmp_scores.data() + lo);
        }
      }
      cp.alerts_identical = true;
      for (size_t i = 0; i < sweep_packets; ++i) {
        const double denom = std::max(std::abs(ref_scores[i]), 1e-12);
        cp.max_rel = std::max(cp.max_rel,
                              std::abs(cmp_scores[i] - ref_scores[i]) / denom);
        if ((cmp_scores[i] > thr) != (ref_scores[i] > thr)) {
          cp.alerts_identical = false;
        }
      }
      if (p == ml::compiled::Precision::kF64) {
        compiled_f64_identical = cp.max_rel == 0.0 && cp.alerts_identical;
      }
      std::printf("  %-4s %.0f ns/pkt (%.2fx vs reference batched), "
                  "max rel divergence %.2e, alerts %s\n",
                  cp.precision, cp.ns, cp.speedup, cp.max_rel,
                  cp.alerts_identical ? "identical" : "DIVERGED");
      compiled_online.push_back(cp);
    }
    std::printf("  f64 plan %s\n\n", compiled_f64_identical
                                         ? "bit-identical to reference"
                                         : "NOT bit-identical (BUG)");
  }

  // Per-model online breakdown over the pre-extracted feature matrix:
  // row-at-a-time scoring vs the fused score_rows path at the default
  // micro-batch, model math only (no extraction in either number) — plus
  // the compiled-plan path for every deployable scorer. The online pair
  // (KitNET, AutoEncoder) compiles at f32 (the deployment precision the
  // headline gate tracks); the table models compile at f64, where the plan
  // is exact by construction.
  struct ModelOnline {
    const char* name = nullptr;
    double row_ns = 0.0;       // reference row-at-a-time (0 = no row path)
    double batched_ns = 0.0;   // reference batched path (0 = no such path)
    double reference_ns = 0.0; // best reference path, the compiled baseline
    double compiled_ns = 0.0;  // compiled plan, same batching as reference
    const char* precision = "f64";
  };
  std::vector<ModelOnline> online_models;
  bool table_compile_ok = true;
  {
    core::KitsuneExtractor ex;
    const size_t fdim = ex.dim();
    std::vector<double> feats(sweep_packets * fdim);
    std::vector<double> row;
    for (size_t i = 0; i < big.view.size(); ++i) {
      ex.process(big.view[i], row);
      std::copy(row.begin(), row.end(),
                feats.begin() + static_cast<std::ptrdiff_t>(i * fdim));
    }
    const double n = static_cast<double>(sweep_packets);
    std::vector<double> out(default_score_batch, 0.0);

    const auto time_model =
        [&](auto&& row_fn, auto&& rows_fn) -> std::pair<double, double> {
      double row_s = 1e30, rows_s = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        for (size_t i = 0; i < sweep_packets; ++i) {
          row_fn(feats.data() + i * fdim);
        }
        row_s = std::min(row_s, seconds_since(t0));
      }
      for (int rep = 0; rep < kReps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        for (size_t lo = 0; lo < sweep_packets; lo += default_score_batch) {
          const size_t m = std::min(default_score_batch, sweep_packets - lo);
          rows_fn(feats.data() + lo * fdim, m, out.data());
        }
        rows_s = std::min(rows_s, seconds_since(t0));
      }
      return {row_s / n * 1e9, rows_s / n * 1e9};
    };

    // Time a compiled plan over the same feature matrix at the same
    // micro-batch as the fused reference path.
    const auto time_plan = [&](const ml::compiled::PlanPtr& plan) -> double {
      ml::compiled::Scratch ps;
      double best = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        for (size_t lo = 0; lo < sweep_packets; lo += default_score_batch) {
          const size_t m = std::min(default_score_batch, sweep_packets - lo);
          plan->score_rows(feats.data() + lo * fdim, m, fdim, out.data(), ps);
        }
        best = std::min(best, seconds_since(t0));
      }
      return best / n * 1e9;
    };

    {
      const ml::KitNet& kn = proto.detector();
      ml::KitNet::ScoreScratch rs;
      ml::KitNet::RowsScratch bs;
      const auto [row_ns, rows_ns] = time_model(
          [&](const double* x) {
            (void)kn.score_row({x, fdim}, rs);
          },
          [&](const double* x, size_t m, double* o) {
            kn.score_rows(x, m, fdim, o, bs);
          });
      double comp_ns = 0.0;
      auto plan = ml::compiled::compile_kitnet(
          kn, {ml::compiled::Precision::kF32});
      if (plan.ok()) {
        comp_ns = time_plan(plan.value());
      } else {
        table_compile_ok = false;
      }
      online_models.push_back(
          ModelOnline{"KitNET", row_ns, rows_ns, rows_ns, comp_ns, "f32"});
    }
    {
      // A single full-width autoencoder (the other online-capable model),
      // trained briefly on the grace region's features.
      ml::AutoEncoderCore ae(fdim, 0.75, 0.1, 77);
      const size_t train_rows = std::min<size_t>(sweep_packets, 2000);
      for (size_t i = 0; i < train_rows; ++i) {
        ae.train_sample({feats.data() + i * fdim, fdim});
      }
      ae.seal();
      ml::AutoEncoderCore::ScoreScratch rs;
      ml::AutoEncoderCore::RowsScratch bs;
      const auto [row_ns, rows_ns] = time_model(
          [&](const double* x) {
            (void)ae.score_sample({x, fdim}, rs);
          },
          [&](const double* x, size_t m, double* o) {
            ae.score_rows(x, m, fdim, o, bs);
          });
      double comp_ns = 0.0;
      auto plan = ml::compiled::compile_autoencoder(
          ae, 0.0, {ml::compiled::Precision::kF32});
      if (plan.ok()) {
        comp_ns = time_plan(plan.value());
      } else {
        table_compile_ok = false;
      }
      online_models.push_back(ModelOnline{"AutoEncoder", row_ns, rows_ns,
                                          rows_ns, comp_ns, "f32"});
    }

    // Table-model scorers, trained on a labeled subsample of the streamed
    // features and timed over a fixed eval slice through Model::score vs
    // the wrapped compiled plan (both paths chunk internally). Labels map
    // each sweep-stream row back to its original capture packet.
    {
      const size_t tail = ds.trace.raw.size() - grace;
      auto label_of = [&](size_t view_i) -> int {
        const size_t raw_j = big.view[view_i].index;
        const size_t ci = grace + (raw_j % tail);
        return ci < ds.pkt_label.size() ? ds.pkt_label[ci] : 0;
      };
      const size_t eval_rows = std::min<size_t>(sweep_packets, 4096);
      const size_t train_rows = std::min<size_t>(sweep_packets, 2048);
      features::FeatureTable Xe =
          features::FeatureTable::make(eval_rows, ex.feature_names());
      for (size_t i = 0; i < eval_rows; ++i) {
        std::copy(feats.begin() + static_cast<std::ptrdiff_t>(i * fdim),
                  feats.begin() + static_cast<std::ptrdiff_t>((i + 1) * fdim),
                  Xe.row_mut(i).begin());
        Xe.labels[i] = label_of(i);
      }
      features::FeatureTable Xt =
          features::FeatureTable::make(train_rows, ex.feature_names());
      const size_t stride = std::max<size_t>(1, sweep_packets / train_rows);
      for (size_t i = 0; i < train_rows; ++i) {
        const size_t src = std::min(i * stride, sweep_packets - 1);
        std::copy(
            feats.begin() + static_cast<std::ptrdiff_t>(src * fdim),
            feats.begin() + static_cast<std::ptrdiff_t>((src + 1) * fdim),
            Xt.row_mut(i).begin());
        Xt.labels[i] = label_of(src);
      }

      constexpr int kTableReps = 3;
      const auto add_table_model = [&](const char* mname, ml::Model& mdl) {
        mdl.fit(Xt);
        ml::ModelPtr compiled;
        if (auto plan = ml::compiled::compile(mdl); plan.ok()) {
          compiled = ml::compiled::wrap(std::move(plan).value(), mname);
        } else {
          std::fprintf(stderr, "compile(%s): %s\n", mname,
                       plan.error().message.c_str());
          table_compile_ok = false;
          return;
        }
        double ref_s = 1e30, comp_s = 1e30;
        for (int rep = 0; rep < kTableReps; ++rep) {
          const Clock::time_point t0 = Clock::now();
          (void)mdl.score(Xe);
          ref_s = std::min(ref_s, seconds_since(t0));
        }
        for (int rep = 0; rep < kTableReps; ++rep) {
          const Clock::time_point t0 = Clock::now();
          (void)compiled->score(Xe);
          comp_s = std::min(comp_s, seconds_since(t0));
        }
        const double ne = static_cast<double>(eval_rows);
        online_models.push_back(ModelOnline{mname, 0.0, 0.0, ref_s / ne * 1e9,
                                            comp_s / ne * 1e9, "f64"});
      };

      ml::RandomForest forest;
      add_table_model("RandomForest", forest);
      ml::Gmm::Config gc;
      gc.components = 4;
      ml::Gmm gmm(gc);
      add_table_model("GMM", gmm);
      ml::OneClassSvm ocsvm;
      add_table_model("OCSVM", ocsvm);
      ml::LinearSvm lsvm;
      add_table_model("LinearSVM", lsvm);
      ml::Knn knn;
      add_table_model("KNN", knn);
    }

    for (const ModelOnline& m : online_models) {
      std::printf("online model %s: reference %.0f ns/row, compiled(%s) "
                  "%.0f ns/row (%.2fx)%s\n",
                  m.name, m.reference_ns, m.precision, m.compiled_ns,
                  m.compiled_ns > 0.0 ? m.reference_ns / m.compiled_ns : 0.0,
                  m.batched_ns > 0.0 ? "" : " [table path]");
    }
    std::printf("\n");
  }

  // Alert-set identity: a single-consumer run must emit bit-identical
  // per-packet scores and alert flags whether it scores row-at-a-time
  // (score_batch=1) or in default micro-batches. This is the acceptance
  // check for the micro-batched consumer.
  struct ScoreRecord {
    uint32_t index = 0;
    double score = 0.0;
    bool alerted = false;
    bool operator==(const ScoreRecord&) const = default;
  };
  class ScoreRecorder : public core::AlertSink {
   public:
    void on_alert(const core::Alert&) override {}
    void on_packet(const netio::PacketView& v, double s, bool a) override {
      recs.push_back(ScoreRecord{v.index, s, a});
    }
    std::vector<ScoreRecord> recs;
  };
  bool alerts_identical = false;
  {
    auto record_run = [&](size_t score_batch, std::vector<ScoreRecord>& out) {
      netio::TraceReplaySource src(big, netio::ReplayOptions{});
      core::IngestRuntime::Options o;
      o.score_batch = score_batch;
      ScoreRecorder sink;
      core::IngestRuntime rt(o, kitsune_factory, &sink);
      auto st = rt.run(src);
      if (!st.ok()) return false;
      out = std::move(sink.recs);
      return true;
    };
    std::vector<ScoreRecord> rec_row, rec_batched;
    alerts_identical = record_run(1, rec_row) &&
                       record_run(default_score_batch, rec_batched) &&
                       rec_row == rec_batched;
    std::printf("row-at-a-time vs micro-batched consumer: %zu vs %zu packets "
                "(%s)\n\n",
                rec_row.size(), rec_batched.size(),
                alerts_identical ? "bit-identical scores and alerts"
                                 : "MISMATCH (BUG)");
  }

  // Consumer sweep: offer the stream at a fixed kOfferedRate line rate
  // (deficit-paced replay) and check each consumer count keeps up. On a
  // one-core host an unpaced drain race cannot show a parallel speedup —
  // N replicas time-slice one CPU — so the meaningful scaling claim is
  // that adding consumers never costs sustained line-rate throughput (the
  // pre-refactor path fell from 62.5k to 41.7k pkts/s at 4 consumers).
  // Repetitions are interleaved round-robin across configurations so slow
  // host phases (CPU steal) hit every configuration alike.
  const double virtual_span =
      big.raw.back().ts - big.raw.front().ts + 0.001;
  const double offered_speed =
      virtual_span * kOfferedRate / static_cast<double>(sweep_packets);
  std::vector<ConfigResult> configs;
  for (size_t consumers : {1u, 2u, 4u}) {
    ConfigResult r;
    r.consumers = consumers;
    r.seconds = 1e30;
    configs.push_back(r);
  }
  for (int rep = 0; rep < kSweepReps; ++rep) {
    for (ConfigResult& r : configs) {
      // Scorer construction (a full KitNet copy per consumer) is setup,
      // not steady-state throughput: build them before starting the clock
      // so configs with more consumers aren't charged for extra copies.
      std::vector<std::unique_ptr<core::KitsuneScorer>> ready;
      for (size_t i = 0; i < r.consumers; ++i) {
        ready.push_back(std::make_unique<core::KitsuneScorer>(proto));
      }
      auto prebuilt_factory = [&ready](size_t i) { return std::move(ready[i]); };
      netio::ReplayOptions paced;
      paced.pace = true;
      paced.speed = offered_speed;
      paced.max_sleep = 0.005;
      netio::TraceReplaySource src(big, paced);
      core::IngestRuntime::Options opts;
      opts.consumers = r.consumers;
      opts.consumer_batch = 256;
      opts.queue_capacity = 8192;
      core::IngestRuntime rt(opts, prebuilt_factory, nullptr);
      // Sweep runs publish into the process registry (the stage-histogram
      // scrape below depends on that), so per-run accounting is a
      // before/after counter delta.
      const RunCounters before =
          scrape_counters(telemetry::Registry::process().snapshot(), "ingest.");
      const Clock::time_point t0 = Clock::now();
      auto stats = rt.run(src);
      const double secs = seconds_since(t0);
      if (!stats.ok()) {
        std::fprintf(stderr, "ingest: %s\n", stats.error().message.c_str());
        return 1;
      }
      if (secs < r.seconds) {
        r.seconds = secs;
        r.counters = counters_since(
            before,
            scrape_counters(telemetry::Registry::process().snapshot(),
                            "ingest."));
      }
    }
  }
  std::printf("offered load: %.0f pkts/s (paced replay)\n", kOfferedRate);
  std::printf("%-10s %-10s %-12s %-12s %-8s %s\n", "consumers", "seconds",
              "achieved", "sustained", "alerts", "kept_up");
  for (ConfigResult& r : configs) {
    r.achieved = r.seconds > 0.0
                     ? static_cast<double>(r.counters.scored) / r.seconds
                     : 0.0;
    // Pacing makes achieved <= offered by construction; within 2% means
    // the runtime was never the bottleneck, so it sustains the offered
    // rate (the standard keep-up reading of a paced throughput test).
    r.kept_up = r.achieved >= 0.98 * kOfferedRate;
    r.sustained = r.kept_up ? kOfferedRate : r.achieved;
    std::printf("%-10zu %-10.3f %-12.0f %-12.0f %-8llu %s\n", r.consumers,
                r.seconds, r.achieved, r.sustained,
                static_cast<unsigned long long>(r.counters.alerted),
                r.kept_up ? "yes" : "NO");
  }

  // Determinism: paced replay (sped up, sleeps clamped) must produce the
  // same alert count as unpaced replay — pacing only changes arrival
  // timing, never what gets scored. One consumer keeps capture order.
  auto alert_count = [&](bool pace) -> long long {
    netio::ReplayOptions opts = rest;
    opts.pace = pace;
    opts.speed = 2000.0;
    opts.max_sleep = 0.0005;
    netio::TraceReplaySource src(ds.trace, opts);
    core::CollectingSink sink;
    core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                           &sink);
    auto stats = rt.run(src);
    if (!stats.ok()) return -1;
    return static_cast<long long>(sink.alerts().size());
  };
  const long long unpaced_alerts = alert_count(false);
  const long long paced_alerts = alert_count(true);
  const bool deterministic =
      unpaced_alerts >= 0 && unpaced_alerts == paced_alerts;
  std::printf("\npaced vs unpaced alerts: %lld vs %lld (%s)\n", paced_alerts,
              unpaced_alerts, deterministic ? "identical" : "MISMATCH (BUG)");

  // Fault stress: multi-consumer run over a truncating/corrupting/
  // reordering source with a lossy queue. Parse skips are expected; the
  // runtime must account for every packet.
  netio::TraceReplaySource inner(ds.trace, rest);
  netio::FaultOptions faults;
  faults.truncate_p = 0.05;
  faults.corrupt_p = 0.05;
  faults.reorder_p = 0.05;
  faults.seed = 7;
  netio::FaultInjectingSource faulty(inner, faults);
  core::IngestRuntime::Options fopts;
  fopts.consumers = 2;
  fopts.queue_capacity = 512;
  fopts.overflow = core::OverflowPolicy::kDropOldest;
  telemetry::Registry fault_reg;
  fopts.registry = &fault_reg;
  core::IngestRuntime frt(fopts, kitsune_factory, nullptr);
  auto fstats_r = frt.run(faulty);
  if (!fstats_r.ok()) {
    std::fprintf(stderr, "fault ingest: %s\n", fstats_r.error().message.c_str());
    return 1;
  }
  const RunCounters fstats = scrape_counters(fault_reg.snapshot(), "ingest.");
  const bool fault_accounted = fstats.accounted();
  std::printf(
      "fault run (2 consumers, drop-oldest): enqueued=%llu dropped=%llu "
      "parse_skipped=%llu scored=%llu alerted=%llu (%s)\n",
      static_cast<unsigned long long>(fstats.enqueued),
      static_cast<unsigned long long>(fstats.dropped),
      static_cast<unsigned long long>(fstats.parse_skipped),
      static_cast<unsigned long long>(fstats.scored),
      static_cast<unsigned long long>(fstats.alerted),
      fault_accounted ? "accounted" : "LEAK (BUG)");

  // The runtime published per-stage latency histograms into the process
  // registry during the sweep; scrape their means as a cross-check on the
  // subtraction-based stage costs above.
  {
    const telemetry::Snapshot snap = telemetry::Registry::process().snapshot();
    for (const char* stage : {"extract", "score", "flush"}) {
      const auto* h = snap.find_histogram(std::string("ingest.stage.") +
                                          stage + "_ns");
      if (h != nullptr && h->count > 0) {
        std::printf("registry %s histogram: %llu samples, mean %.0f ns\n",
                    stage, static_cast<unsigned long long>(h->count),
                    h->sum / static_cast<double>(h->count));
      }
    }
  }

  // Sharded ingestion: flow-hash-sharded SPSC pipelines vs the single
  // mutex queue. Unpaced drains measure routing overhead at shards=1 (the
  // acceptance bound: within 10% of the single-queue drain) and 4-shard
  // scaling (only meaningful on multi-core hosts — one core time-slices
  // the shard threads); a shards=1 recorder run must reproduce the
  // single-queue per-packet record stream bit-for-bit (the N-shard
  // partition equivalence is pinned by ingest_shard_test against a
  // sequential per-shard reference); a 4-shard run against a private
  // registry reports router hash balance and ring occupancy high-water;
  // and a paced run hot-swaps a freshly built scorer mid-stream through
  // deploy() without draining traffic.
  double shard1_rate = 0.0, shard4_rate = 0.0;
  bool sharded_alerts_identical = false;
  uint64_t balance_max = 0, balance_min = 0, ring_hw_max = 0;
  uint64_t swaps_applied = 0;
  bool hot_swap_accounted = false;
  RunCounters swap_stats;
  const bool multi_core = ThreadPool::hardware_threads() >= 4;
  {
    auto shard_drain = [&](size_t shards) -> double {
      double best_s = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        netio::TraceReplaySource src(big, netio::ReplayOptions{});
        core::IngestRuntime::Options o;
        o.shards = shards;
        core::IngestRuntime rt(o, kitsune_factory, nullptr);
        const Clock::time_point t0 = Clock::now();
        auto stats = rt.run(src);
        if (!stats.ok()) {
          std::fprintf(stderr, "sharded ingest: %s\n",
                       stats.error().message.c_str());
          return 0.0;
        }
        best_s = std::min(best_s, seconds_since(t0));
      }
      return best_s > 0.0 ? static_cast<double>(sweep_packets) / best_s : 0.0;
    };
    shard1_rate = shard_drain(1);
    shard4_rate = shard_drain(4);
    std::printf(
        "\nsharded unpaced drain: 1 shard %.0f pkts/s (%.2fx single-queue), "
        "4 shards %.0f pkts/s (%.2fx vs 1 shard, %s host)\n",
        shard1_rate, unpaced_peak > 0.0 ? shard1_rate / unpaced_peak : 0.0,
        shard4_rate, shard1_rate > 0.0 ? shard4_rate / shard1_rate : 0.0,
        multi_core ? "multi-core" : "single-core");

    // shards=1 routes everything through one SPSC ring and one consumer,
    // so it must reproduce the single-queue record stream exactly.
    auto sharded_record_run = [&](size_t shards,
                                  std::vector<ScoreRecord>& out) {
      netio::TraceReplaySource src(big, netio::ReplayOptions{});
      core::IngestRuntime::Options o;
      o.shards = shards;
      ScoreRecorder sink;
      core::IngestRuntime rt(o, kitsune_factory, &sink);
      auto st = rt.run(src);
      if (!st.ok()) return false;
      out = std::move(sink.recs);
      return true;
    };
    std::vector<ScoreRecord> rec_single_queue, rec_sharded;
    {
      netio::TraceReplaySource src(big, netio::ReplayOptions{});
      ScoreRecorder sink;
      core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                             &sink);
      auto st = rt.run(src);
      if (st.ok()) rec_single_queue = std::move(sink.recs);
    }
    sharded_alerts_identical = !rec_single_queue.empty() &&
                               sharded_record_run(1, rec_sharded) &&
                               rec_single_queue == rec_sharded;
    std::printf("sharded vs single-queue records: %zu vs %zu packets (%s)\n",
                rec_sharded.size(), rec_single_queue.size(),
                sharded_alerts_identical
                    ? "bit-identical scores and alerts"
                    : "MISMATCH (BUG)");

    // Router hash balance and ring occupancy, scraped from a private
    // registry so the per-shard instruments aren't mixed with the sweep's.
    {
      telemetry::Registry reg;
      core::IngestRuntime::Options o;
      o.shards = 4;
      o.registry = &reg;
      netio::TraceReplaySource src(big, netio::ReplayOptions{});
      core::IngestRuntime rt(o, kitsune_factory, nullptr);
      auto st = rt.run(src);
      if (st.ok()) {
        const telemetry::Snapshot snap = reg.snapshot();
        balance_min = UINT64_MAX;
        for (int i = 0; i < 4; ++i) {
          const std::string p = "ingest.shard" + std::to_string(i) + ".";
          const uint64_t routed = snap.counter_value(p + "routed");
          balance_max = std::max(balance_max, routed);
          balance_min = std::min(balance_min, routed);
          ring_hw_max = std::max(
              ring_hw_max,
              static_cast<uint64_t>(snap.gauge_value(p + "ring.high_water")));
        }
        if (balance_min == UINT64_MAX) balance_min = 0;
        std::printf("router balance over 4 shards: max %llu / min %llu "
                    "packets, ring high-water max %llu\n",
                    static_cast<unsigned long long>(balance_max),
                    static_cast<unsigned long long>(balance_min),
                    static_cast<unsigned long long>(ring_hw_max));
      }
    }

    // Hot swap under paced load: deploy() publishes a fresh scorer while
    // the shards are mid-stream; every consumer picks it up at its next
    // batch boundary and accounting stays lossless.
    {
      telemetry::Registry reg;
      core::IngestRuntime::Options o;
      o.shards = 2;
      o.registry = &reg;
      netio::ReplayOptions paced;
      paced.pace = true;
      paced.speed = offered_speed;
      paced.max_sleep = 0.005;
      netio::TraceReplaySource src(big, paced);
      core::IngestRuntime rt(o, kitsune_factory, nullptr);
      std::atomic<bool> run_ok{false};
      std::thread driver([&] {
        auto st = rt.run(src);
        if (st.ok()) run_ok.store(true);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      rt.deploy([&proto](size_t) {
        return std::make_unique<core::KitsuneScorer>(proto);
      });
      driver.join();
      if (run_ok.load()) {
        const telemetry::Snapshot snap = reg.snapshot();
        swap_stats = scrape_counters(snap, "ingest.");
        hot_swap_accounted = swap_stats.accounted();
        swaps_applied = snap.counter_value("ingest.swaps_applied");
      }
      std::printf("hot swap under paced load (2 shards): scored=%llu "
                  "swaps_applied=%llu (%s)\n",
                  static_cast<unsigned long long>(swap_stats.scored),
                  static_cast<unsigned long long>(swaps_applied),
                  hot_swap_accounted ? "accounted" : "LEAK (BUG)");
    }
  }

  // Socket front-end: the same sweep stream delivered over loopback TCP
  // through the event-driven gateway instead of in-process replay. Three
  // measurements: drain rate (gate: >= 0.8x the replay drain — the epoll
  // loop, framing decode, and loopback copies are the only extra work),
  // score/alert identity vs the replay record stream (the wire carries the
  // exact capture index and timestamp, so records must match bit for bit),
  // and accept-to-first-score latency over a series of short connections.
  double socket_rate = 0.0;
  bool socket_alerts_identical = false;
  bool socket_accounted = false;
  uint64_t socket_frames = 0, socket_shed = 0;
  size_t socket_conns = 0;
  double lat_ms_min = 0.0, lat_ms_p50 = 0.0, lat_ms_p90 = 0.0,
         lat_ms_max = 0.0;
  {
    // Drain rate: one connection streaming the whole sweep stream into a
    // 1-consumer runtime (the shape unpaced_peak was measured with).
    double best_s = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      netio::FrontendOptions fo;
      fo.link = big.link;
      telemetry::Registry fe_reg;
      fo.registry = &fe_reg;
      netio::GatewayFrontend fe(fo);
      if (!fe.bind().ok()) break;
      std::thread client([&] {
        (void)netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), big, 0);
      });
      core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                             nullptr);
      const Clock::time_point t0 = Clock::now();
      auto st = rt.run(fe);
      const double secs = seconds_since(t0);
      client.join();
      if (!st.ok()) break;
      best_s = std::min(best_s, secs);
    }
    socket_rate = best_s < 1e29 && best_s > 0.0
                      ? static_cast<double>(sweep_packets) / best_s
                      : 0.0;
    std::printf("\nsocket drain (loopback TCP, 1 consumer): %.0f pkts/s "
                "(%.2fx replay drain)\n",
                socket_rate,
                unpaced_peak > 0.0 ? socket_rate / unpaced_peak : 0.0);

    // Identity + accounting: recorder runs over replay and socket must
    // produce the same per-packet record stream, and the conservation
    // invariant must span the socket path.
    std::vector<ScoreRecord> rec_replay, rec_socket;
    {
      netio::TraceReplaySource src(big, netio::ReplayOptions{});
      ScoreRecorder sink;
      core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                             &sink);
      if (rt.run(src).ok()) rec_replay = std::move(sink.recs);
    }
    {
      netio::FrontendOptions fo;
      fo.link = big.link;
      telemetry::Registry fe_reg;
      fo.registry = &fe_reg;
      netio::GatewayFrontend fe(fo);
      if (fe.bind().ok()) {
        std::thread client([&] {
          (void)netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), big, 0);
        });
        telemetry::Registry rt_reg;
        core::IngestRuntime::Options o;
        o.registry = &rt_reg;
        ScoreRecorder sink;
        core::IngestRuntime rt(o, kitsune_factory, &sink);
        const bool ok = rt.run(fe).ok();
        client.join();
        if (ok) {
          rec_socket = std::move(sink.recs);
          const RunCounters c =
              scrape_counters(rt_reg.snapshot(), "ingest.");
          for (const netio::ConnReport& r : fe.connections()) {
            socket_frames += r.frames;
            socket_shed += r.shed;
          }
          socket_conns = fe.connections().size();
          socket_accounted = c.accounted() &&
                             socket_frames == sweep_packets &&
                             socket_frames == c.enqueued;
        }
      }
    }
    socket_alerts_identical =
        !rec_replay.empty() && rec_replay == rec_socket;
    std::printf("socket vs replay records: %zu vs %zu packets (%s); "
                "%zu conns, %llu frames, %llu shed (%s)\n",
                rec_socket.size(), rec_replay.size(),
                socket_alerts_identical ? "bit-identical scores and alerts"
                                        : "MISMATCH (BUG)",
                socket_conns, static_cast<unsigned long long>(socket_frames),
                static_cast<unsigned long long>(socket_shed),
                socket_accounted ? "accounted" : "LEAK (BUG)");

    // Accept-to-first-score latency: sequential short connections, each
    // carrying one slice of the stream; the clock runs from just before
    // connect() to the consumer scoring that connection's first packet.
    {
      constexpr size_t kLatConns = 16;
      const size_t slice = sweep_packets / kLatConns;
      std::vector<Clock::time_point> connect_at(kLatConns);
      std::vector<Clock::time_point> scored_at(kLatConns);
      class FirstScoreSink : public core::AlertSink {
       public:
        FirstScoreSink(size_t slice, std::vector<Clock::time_point>& at)
            : slice_(slice), at_(at) {}
        void on_alert(const core::Alert&) override {}
        void on_packet(const netio::PacketView& v, double, bool) override {
          if (v.index % slice_ == 0) {
            const size_t i = v.index / slice_;
            if (i < at_.size()) at_[i] = Clock::now();
          }
        }
       private:
        size_t slice_;
        std::vector<Clock::time_point>& at_;
      };
      netio::FrontendOptions fo;
      fo.link = big.link;
      fo.min_streams = kLatConns;
      telemetry::Registry fe_reg;
      fo.registry = &fe_reg;
      netio::GatewayFrontend fe(fo);
      if (fe.bind().ok()) {
        std::thread client([&] {
          for (size_t i = 0; i < kLatConns; ++i) {
            connect_at[i] = Clock::now();
            auto s = netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), big, 0,
                                           i * slice, (i + 1) * slice);
            if (!s.ok()) return;
          }
        });
        FirstScoreSink sink(slice, scored_at);
        core::IngestRuntime rt(core::IngestRuntime::Options{},
                               kitsune_factory, &sink);
        const bool ok = rt.run(fe).ok();
        client.join();
        if (ok) {
          std::vector<double> ms;
          for (size_t i = 0; i < kLatConns; ++i) {
            const double v =
                std::chrono::duration<double, std::milli>(scored_at[i] -
                                                          connect_at[i])
                    .count();
            if (v > 0.0) ms.push_back(v);
          }
          if (!ms.empty()) {
            std::sort(ms.begin(), ms.end());
            lat_ms_min = ms.front();
            lat_ms_p50 = ms[ms.size() / 2];
            lat_ms_p90 = ms[ms.size() * 9 / 10];
            lat_ms_max = ms.back();
            std::printf("accept-to-first-score latency over %zu conns: "
                        "min %.2f ms, p50 %.2f ms, p90 %.2f ms, max %.2f "
                        "ms\n",
                        ms.size(), lat_ms_min, lat_ms_p50, lat_ms_p90,
                        lat_ms_max);
          }
        }
      }
    }
  }

  // JSON artifact, rendered through the unified telemetry serializer (the
  // same Writer Snapshot::to_json uses).
  telemetry::json::Writer w;
  w.kv_str("benchmark", "ingest_runtime");
  w.kv_str("capture", "P1");
  w.kv_u64("streamed_packets", streamed);
  w.kv_u64("sweep_packets", sweep_packets);
  w.kv_i64("stream_repeats", kStreamRepeats);
  w.kv_u64("threads", ThreadPool::global().size());
  w.kv_u64("hardware_threads", ThreadPool::hardware_threads());
  w.kv_i64("reps", kReps);
  w.begin_inline_object("stage_ns_per_pkt");
  w.kv_f("extract", extract_ns, 1);
  w.kv_f("score", score_ns, 1);
  w.kv_f("queue", queue_ns, 1);
  w.end();
  w.kv_f("unpaced_single_consumer_pkts_per_sec", unpaced_peak, 1);
  w.kv_f("offered_pkts_per_sec", kOfferedRate, 1);
  w.begin_inline_object("online");
  w.kv_u64("score_batch_default", default_score_batch);
  w.kv_f("row_score_ns_per_pkt", row_score_ns, 1);
  w.kv_f("batched_score_ns_per_pkt", batched_score_ns, 1);
  w.kv_f("speedup_vs_batch1", batched_score_ns > 0.0
                                  ? row_score_ns / batched_score_ns
                                  : 0.0,
         2);
  w.kv_f("speedup_vs_perrow_scorer",
         batched_score_ns > 0.0 ? score_ns / batched_score_ns : 0.0, 2);
  w.kv_bool("alerts_identical", alerts_identical);
  w.end();
  w.begin_array("online_sweep");
  for (const OnlinePoint& p : online_sweep) {
    w.begin_inline_object();
    w.kv_u64("score_batch", p.batch);
    w.kv_f("score_ns_per_pkt", p.ns, 1);
    w.end();
  }
  w.end();
  w.begin_array("online_compiled");
  for (const CompiledPoint& cp : compiled_online) {
    w.begin_inline_object();
    w.kv_str("precision", cp.precision);
    w.kv_f("score_ns_per_pkt", cp.ns, 1);
    w.kv_f("speedup_vs_reference", cp.speedup, 2);
    w.kv_f("max_rel_divergence", cp.max_rel, 6);
    w.kv_bool("alerts_identical", cp.alerts_identical);
    w.end();
  }
  w.end();
  w.begin_array("online_models");
  for (const ModelOnline& m : online_models) {
    w.begin_inline_object();
    w.kv_str("model", m.name);
    w.kv_f("row_ns_per_row", m.row_ns, 1);
    w.kv_f("batched_ns_per_row", m.batched_ns, 1);
    w.kv_f("speedup", m.batched_ns > 0.0 ? m.row_ns / m.batched_ns : 0.0, 2);
    w.kv_str("compiled_precision", m.precision);
    w.kv_f("reference_ns_per_row", m.reference_ns, 1);
    w.kv_f("compiled_ns_per_row", m.compiled_ns, 1);
    w.kv_f("compiled_vs_reference",
           m.compiled_ns > 0.0 ? m.reference_ns / m.compiled_ns : 0.0, 2);
    w.end();
  }
  w.end();
  w.begin_array("configs");
  for (const ConfigResult& r : configs) {
    w.begin_inline_object();
    w.kv_u64("consumers", r.consumers);
    w.kv_f("seconds", r.seconds, 4);
    w.kv_f("pkts_per_sec", r.sustained, 1);
    w.kv_f("achieved_pkts_per_sec", r.achieved, 1);
    w.kv_bool("kept_up", r.kept_up);
    w.kv_u64("scored", r.counters.scored);
    w.kv_u64("alerted", r.counters.alerted);
    w.end();
  }
  w.end();
  w.kv_i64("paced_alerts", paced_alerts);
  w.kv_i64("unpaced_alerts", unpaced_alerts);
  w.kv_bool("paced_deterministic", deterministic);
  w.begin_inline_object("fault_run");
  w.kv_u64("enqueued", fstats.enqueued);
  w.kv_u64("dropped", fstats.dropped);
  w.kv_u64("parse_skipped", fstats.parse_skipped);
  w.kv_u64("scored", fstats.scored);
  w.kv_u64("alerted", fstats.alerted);
  w.kv_bool("accounted", fault_accounted);
  w.end();
  w.begin_inline_object("sharded");
  w.kv_f("single_shard_pkts_per_sec", shard1_rate, 1);
  w.kv_f("four_shard_pkts_per_sec", shard4_rate, 1);
  w.kv_f("sharded_vs_single_queue",
         unpaced_peak > 0.0 ? shard1_rate / unpaced_peak : 0.0, 3);
  w.kv_f("scaling_4shard_vs_1shard",
         shard1_rate > 0.0 ? shard4_rate / shard1_rate : 0.0, 3);
  w.kv_bool("multi_core", multi_core);
  w.kv_bool("sharded_alerts_identical", sharded_alerts_identical);
  w.kv_u64("ring_high_water_max", ring_hw_max);
  w.kv_u64("balance_max_shard_pkts", balance_max);
  w.kv_u64("balance_min_shard_pkts", balance_min);
  w.kv_u64("swaps_applied", swaps_applied);
  w.kv_bool("hot_swap_accounted", hot_swap_accounted);
  w.end();
  w.begin_inline_object("socket");
  w.kv_f("socket_drain_pkts_per_sec", socket_rate, 1);
  w.kv_f("replay_drain_pkts_per_sec", unpaced_peak, 1);
  w.kv_f("socket_vs_replay",
         unpaced_peak > 0.0 ? socket_rate / unpaced_peak : 0.0, 3);
  w.kv_bool("socket_alerts_identical", socket_alerts_identical);
  w.kv_u64("socket_conns", socket_conns);
  w.kv_u64("socket_frames", socket_frames);
  w.kv_u64("socket_shed", socket_shed);
  w.kv_bool("socket_accounted", socket_accounted);
  w.kv_f("first_score_ms_min", lat_ms_min, 2);
  w.kv_f("first_score_ms_p50", lat_ms_p50, 2);
  w.kv_f("first_score_ms_p90", lat_ms_p90, 2);
  w.kv_f("first_score_ms_max", lat_ms_max, 2);
  w.end();
  if (std::FILE* f = std::fopen("BENCH_ingest.json", "w")) {
    const std::string doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("[artifact] BENCH_ingest.json\n");
  }
  return (deterministic && fault_accounted && alerts_identical &&
          sharded_alerts_identical && hot_swap_accounted &&
          compiled_f64_identical && table_compile_ok &&
          socket_alerts_identical && socket_accounted)
             ? 0
             : 1;
}
