// Gateway ingestion throughput benchmark: drives the IngestRuntime over the
// P1 (Mirai) capture with a trained OnlineKitsune per consumer, sweeping the
// consumer count (best of several repetitions per config); breaks the
// per-packet cost into extract / score / queue stages; checks that paced and
// unpaced replay of the same capture alert identically; and stresses a
// multi-consumer run over a fault-injecting source. Emits BENCH_ingest.json.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/ingest.h"
#include "core/kitsune_extractor.h"
#include "core/stream.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ConfigResult {
  size_t consumers = 0;
  double seconds = 0.0;
  double achieved = 0.0;   // scored packets / wall seconds
  double sustained = 0.0;  // offered rate when kept up, else achieved
  bool kept_up = false;
  lumen::core::IngestStats stats;
};

constexpr int kReps = 7;           // best-of repetitions per timed section
constexpr int kSweepReps = 3;      // best-of repetitions per sweep config
constexpr int kStreamRepeats = 8;  // sweep stream = streamed region x repeats

// Offered load for the consumer sweep: 140k pkts/s, 2.24x the 62.5k pkts/s
// peak the pre-refactor runtime managed with a single consumer (and ~3.4x
// its 4-consumer rate). A configuration "keeps up" when it scores at >= 98%
// of the offered rate, i.e. the queue never becomes the bottleneck.
constexpr double kOfferedRate = 140000.0;

}  // namespace

int main() {
  using namespace lumen;
  std::printf("bench_ingest: gateway ingestion runtime throughput\n\n");

  const trace::Dataset ds = trace::make_dataset("P1", 1.0);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const size_t streamed = ds.trace.view.size() - grace;
  std::printf("capture: P1 x1.0, %zu packets (%zu grace / %zu streamed)\n",
              ds.trace.view.size(), grace, streamed);
  std::printf("threads: %zu (pool), %zu (hardware)\n",
              ThreadPool::global().size(), ThreadPool::hardware_threads());

  core::OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});
  std::printf("trained OnlineKitsune prototype (threshold %.4f)\n\n",
              proto.threshold());

  auto kitsune_factory = [&proto](size_t) {
    return std::make_unique<core::KitsuneScorer>(proto);
  };
  netio::ReplayOptions rest;
  rest.begin = grace;

  // Steady-state stream for the timed sections: the streamed region
  // repeated back-to-back (timestamps shifted so time stays monotonic).
  // A single pass lasts ~10 ms here, so fixed setup costs (thread spawn)
  // would otherwise dominate the consumer-count comparison.
  netio::Trace big;
  big.link = ds.trace.link;
  const double span = ds.trace.raw.back().ts - ds.trace.raw[grace].ts + 0.001;
  for (int rep = 0; rep < kStreamRepeats; ++rep) {
    for (size_t i = grace; i < ds.trace.raw.size(); ++i) {
      netio::RawPacket p = ds.trace.raw[i];
      p.ts += rep * span;
      big.raw.push_back(std::move(p));
    }
  }
  netio::parse_trace(big);
  const size_t sweep_packets = big.view.size();
  std::printf("sweep stream: streamed region x%d = %zu packets\n\n",
              kStreamRepeats, sweep_packets);

  // Per-stage packet cost. Stage boundaries are nested, so each stage's
  // marginal cost falls out by subtraction: extract-only, then
  // extract+score (OnlineKitsune), then the full 1-consumer runtime whose
  // extra cost is queue/thread overhead.
  double extract_ns = 0.0, score_ns = 0.0, queue_ns = 0.0;
  double unpaced_peak = 0.0;  // 1-consumer full-runtime drain rate
  {
    double extract_s = 1e30, scored_s = 1e30, runtime_s = 1e30;
    std::vector<double> row;
    for (int rep = 0; rep < kReps; ++rep) {
      core::KitsuneExtractor ex;
      const Clock::time_point t0 = Clock::now();
      for (const auto& view : big.view) ex.process(view, row);
      extract_s = std::min(extract_s, seconds_since(t0));
    }
    for (int rep = 0; rep < kReps; ++rep) {
      core::OnlineKitsune det = proto;
      const Clock::time_point t0 = Clock::now();
      for (const auto& view : big.view) det.score_packet(view);
      scored_s = std::min(scored_s, seconds_since(t0));
    }
    for (int rep = 0; rep < kReps; ++rep) {
      netio::TraceReplaySource src(big, netio::ReplayOptions{});
      core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                             nullptr);
      const Clock::time_point t0 = Clock::now();
      auto stats = rt.run(src);
      if (!stats.ok()) {
        std::fprintf(stderr, "stage ingest: %s\n",
                     stats.error().message.c_str());
        return 1;
      }
      runtime_s = std::min(runtime_s, seconds_since(t0));
    }
    const double n = static_cast<double>(sweep_packets);
    extract_ns = extract_s / n * 1e9;
    score_ns = std::max(0.0, (scored_s - extract_s) / n * 1e9);
    queue_ns = std::max(0.0, (runtime_s - scored_s) / n * 1e9);
    unpaced_peak = runtime_s > 0.0 ? n / runtime_s : 0.0;
    std::printf("per-packet cost: extract %.0f ns, score %.0f ns, "
                "queue+runtime %.0f ns\n",
                extract_ns, score_ns, queue_ns);
    std::printf("unpaced 1-consumer drain rate: %.0f pkts/s\n\n",
                unpaced_peak);
  }

  // Consumer sweep: offer the stream at a fixed kOfferedRate line rate
  // (deficit-paced replay) and check each consumer count keeps up. On a
  // one-core host an unpaced drain race cannot show a parallel speedup —
  // N replicas time-slice one CPU — so the meaningful scaling claim is
  // that adding consumers never costs sustained line-rate throughput (the
  // pre-refactor path fell from 62.5k to 41.7k pkts/s at 4 consumers).
  // Repetitions are interleaved round-robin across configurations so slow
  // host phases (CPU steal) hit every configuration alike.
  const double virtual_span =
      big.raw.back().ts - big.raw.front().ts + 0.001;
  const double offered_speed =
      virtual_span * kOfferedRate / static_cast<double>(sweep_packets);
  std::vector<ConfigResult> configs;
  for (size_t consumers : {1u, 2u, 4u}) {
    ConfigResult r;
    r.consumers = consumers;
    r.seconds = 1e30;
    configs.push_back(r);
  }
  for (int rep = 0; rep < kSweepReps; ++rep) {
    for (ConfigResult& r : configs) {
      // Scorer construction (a full KitNet copy per consumer) is setup,
      // not steady-state throughput: build them before starting the clock
      // so configs with more consumers aren't charged for extra copies.
      std::vector<std::unique_ptr<core::KitsuneScorer>> ready;
      for (size_t i = 0; i < r.consumers; ++i) {
        ready.push_back(std::make_unique<core::KitsuneScorer>(proto));
      }
      auto prebuilt_factory = [&ready](size_t i) { return std::move(ready[i]); };
      netio::ReplayOptions paced;
      paced.pace = true;
      paced.speed = offered_speed;
      paced.max_sleep = 0.005;
      netio::TraceReplaySource src(big, paced);
      core::IngestRuntime::Options opts;
      opts.consumers = r.consumers;
      opts.consumer_batch = 256;
      opts.queue_capacity = 8192;
      core::IngestRuntime rt(opts, prebuilt_factory, nullptr);
      const Clock::time_point t0 = Clock::now();
      auto stats = rt.run(src);
      const double secs = seconds_since(t0);
      if (!stats.ok()) {
        std::fprintf(stderr, "ingest: %s\n", stats.error().message.c_str());
        return 1;
      }
      if (secs < r.seconds) {
        r.seconds = secs;
        r.stats = stats.value();
      }
    }
  }
  std::printf("offered load: %.0f pkts/s (paced replay)\n", kOfferedRate);
  std::printf("%-10s %-10s %-12s %-12s %-8s %s\n", "consumers", "seconds",
              "achieved", "sustained", "alerts", "kept_up");
  for (ConfigResult& r : configs) {
    r.achieved = r.seconds > 0.0
                     ? static_cast<double>(r.stats.scored) / r.seconds
                     : 0.0;
    // Pacing makes achieved <= offered by construction; within 2% means
    // the runtime was never the bottleneck, so it sustains the offered
    // rate (the standard keep-up reading of a paced throughput test).
    r.kept_up = r.achieved >= 0.98 * kOfferedRate;
    r.sustained = r.kept_up ? kOfferedRate : r.achieved;
    std::printf("%-10zu %-10.3f %-12.0f %-12.0f %-8llu %s\n", r.consumers,
                r.seconds, r.achieved, r.sustained,
                static_cast<unsigned long long>(r.stats.alerted),
                r.kept_up ? "yes" : "NO");
  }

  // Determinism: paced replay (sped up, sleeps clamped) must produce the
  // same alert count as unpaced replay — pacing only changes arrival
  // timing, never what gets scored. One consumer keeps capture order.
  auto alert_count = [&](bool pace) -> long long {
    netio::ReplayOptions opts = rest;
    opts.pace = pace;
    opts.speed = 2000.0;
    opts.max_sleep = 0.0005;
    netio::TraceReplaySource src(ds.trace, opts);
    core::CollectingSink sink;
    core::IngestRuntime rt(core::IngestRuntime::Options{}, kitsune_factory,
                           &sink);
    auto stats = rt.run(src);
    if (!stats.ok()) return -1;
    return static_cast<long long>(stats.value().alerted);
  };
  const long long unpaced_alerts = alert_count(false);
  const long long paced_alerts = alert_count(true);
  const bool deterministic =
      unpaced_alerts >= 0 && unpaced_alerts == paced_alerts;
  std::printf("\npaced vs unpaced alerts: %lld vs %lld (%s)\n", paced_alerts,
              unpaced_alerts, deterministic ? "identical" : "MISMATCH (BUG)");

  // Fault stress: multi-consumer run over a truncating/corrupting/
  // reordering source with a lossy queue. Parse skips are expected; the
  // runtime must account for every packet.
  netio::TraceReplaySource inner(ds.trace, rest);
  netio::FaultOptions faults;
  faults.truncate_p = 0.05;
  faults.corrupt_p = 0.05;
  faults.reorder_p = 0.05;
  faults.seed = 7;
  netio::FaultInjectingSource faulty(inner, faults);
  core::IngestRuntime::Options fopts;
  fopts.consumers = 2;
  fopts.queue_capacity = 512;
  fopts.overflow = core::OverflowPolicy::kDropOldest;
  core::IngestRuntime frt(fopts, kitsune_factory, nullptr);
  auto fstats_r = frt.run(faulty);
  if (!fstats_r.ok()) {
    std::fprintf(stderr, "fault ingest: %s\n", fstats_r.error().message.c_str());
    return 1;
  }
  const core::IngestStats fstats = fstats_r.value();
  const bool fault_accounted =
      fstats.scored + fstats.parse_skipped == fstats.enqueued - fstats.dropped;
  std::printf(
      "fault run (2 consumers, drop-oldest): enqueued=%llu dropped=%llu "
      "parse_skipped=%llu scored=%llu alerted=%llu (%s)\n",
      static_cast<unsigned long long>(fstats.enqueued),
      static_cast<unsigned long long>(fstats.dropped),
      static_cast<unsigned long long>(fstats.parse_skipped),
      static_cast<unsigned long long>(fstats.scored),
      static_cast<unsigned long long>(fstats.alerted),
      fault_accounted ? "accounted" : "LEAK (BUG)");

  // The runtime published per-stage latency histograms into the process
  // registry during the sweep; scrape their means as a cross-check on the
  // subtraction-based stage costs above.
  {
    const telemetry::Snapshot snap = telemetry::Registry::process().snapshot();
    for (const char* stage : {"extract", "score", "flush"}) {
      const auto* h = snap.find_histogram(std::string("ingest.stage.") +
                                          stage + "_ns");
      if (h != nullptr && h->count > 0) {
        std::printf("registry %s histogram: %llu samples, mean %.0f ns\n",
                    stage, static_cast<unsigned long long>(h->count),
                    h->sum / static_cast<double>(h->count));
      }
    }
  }

  // JSON artifact, rendered through the unified telemetry serializer (the
  // same Writer Snapshot::to_json uses).
  telemetry::json::Writer w;
  w.kv_str("benchmark", "ingest_runtime");
  w.kv_str("capture", "P1");
  w.kv_u64("streamed_packets", streamed);
  w.kv_u64("sweep_packets", sweep_packets);
  w.kv_i64("stream_repeats", kStreamRepeats);
  w.kv_u64("threads", ThreadPool::global().size());
  w.kv_u64("hardware_threads", ThreadPool::hardware_threads());
  w.kv_i64("reps", kReps);
  w.begin_inline_object("stage_ns_per_pkt");
  w.kv_f("extract", extract_ns, 1);
  w.kv_f("score", score_ns, 1);
  w.kv_f("queue", queue_ns, 1);
  w.end();
  w.kv_f("unpaced_single_consumer_pkts_per_sec", unpaced_peak, 1);
  w.kv_f("offered_pkts_per_sec", kOfferedRate, 1);
  w.begin_array("configs");
  for (const ConfigResult& r : configs) {
    w.begin_inline_object();
    w.kv_u64("consumers", r.consumers);
    w.kv_f("seconds", r.seconds, 4);
    w.kv_f("pkts_per_sec", r.sustained, 1);
    w.kv_f("achieved_pkts_per_sec", r.achieved, 1);
    w.kv_bool("kept_up", r.kept_up);
    w.kv_u64("scored", r.stats.scored);
    w.kv_u64("alerted", r.stats.alerted);
    w.end();
  }
  w.end();
  w.kv_i64("paced_alerts", paced_alerts);
  w.kv_i64("unpaced_alerts", unpaced_alerts);
  w.kv_bool("paced_deterministic", deterministic);
  w.begin_inline_object("fault_run");
  w.kv_u64("enqueued", fstats.enqueued);
  w.kv_u64("dropped", fstats.dropped);
  w.kv_u64("parse_skipped", fstats.parse_skipped);
  w.kv_u64("scored", fstats.scored);
  w.kv_u64("alerted", fstats.alerted);
  w.kv_bool("accounted", fault_accounted);
  w.end();
  if (std::FILE* f = std::fopen("BENCH_ingest.json", "w")) {
    const std::string doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("[artifact] BENCH_ingest.json\n");
  }
  return (deterministic && fault_accounted) ? 0 : 1;
}
