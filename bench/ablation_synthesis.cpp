// §5.4 synthesis ablation: run the greedy brute-force search over feature
// blocks x models x training setup and print the full search trace — the
// construction evidence behind the AM rows of Fig. 6.
#include "fig_common.h"

#include "eval/synthesis.h"

int main() {
  using namespace lumen;
  bench::print_header("§5.4: synthesizing a new algorithm by greedy search");

  eval::SynthOptions opts;
  opts.datasets = trace::connection_dataset_ids();
  eval::SynthResult result = eval::synthesize(bench::shared_benchmark(), opts);

  std::printf("search trace (%zu candidates):\n", result.evaluated);
  std::printf("%-52s %s\n", "candidate", "mean precision");
  for (const auto& [desc, score] : result.trace) {
    std::printf("%-52.52s %.4f%s\n", desc.c_str(), score,
                desc == result.candidate.describe() && score == result.score
                    ? "  <-- winner"
                    : "");
  }

  std::printf("\nwinner: %s  (mean precision %.4f over %zu datasets)\n",
              result.candidate.describe().c_str(), result.score,
              opts.datasets.size());

  // Baselines for context: the strongest registry algorithms under the
  // same protocol.
  std::printf("\nregistry baselines under the identical protocol:\n");
  for (const char* algo : {"A13", "A14", "A15", "A10"}) {
    double sum = 0.0;
    size_t n = 0;
    for (const std::string& ds : opts.datasets) {
      auto run = bench::shared_benchmark().same_dataset(algo, ds);
      if (run.ok()) {
        sum += run.value().record.precision;
        ++n;
      }
    }
    std::printf("  %-6s mean precision %.4f\n", algo,
                n > 0 ? sum / static_cast<double>(n) : 0.0);
  }
  std::printf(
      "\nThe synthesized pipeline recombines published modules and matches\n"
      "or beats the individual baselines (the paper reports +4%% average\n"
      "precision from the same style of search).\n");
  return 0;
}
