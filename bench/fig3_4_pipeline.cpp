// Figures 3 & 4: the Kitsune logical pipeline and the template-file
// programming model. This binary prints the registry's actual Kitsune
// template (the Fig. 4 artifact), type-checks it, executes it, and shows
// the engine's per-operation profile — the running version of Fig. 3's
// logical diagram.
#include "fig_common.h"

int main() {
  using namespace lumen;
  bench::print_header("Figures 3 & 4: the template programming model");

  const core::AlgorithmDef* kitsune = core::find_algorithm("A06");
  std::printf("-- Fig. 4: the template file for A06 (Kitsune) --\n%s\n",
              kitsune->feature_template.c_str());

  auto spec = core::PipelineSpec::parse(kitsune->feature_template);
  if (!spec.ok()) {
    std::fprintf(stderr, "parse: %s\n", spec.error().message.c_str());
    return 1;
  }
  core::Engine engine;
  if (auto check = engine.type_check(spec.value()); !check.ok()) {
    std::fprintf(stderr, "type check: %s\n", check.error().message.c_str());
    return 1;
  }
  std::printf("type check: OK (%zu operations)\n\n",
              spec.value().ops.size());

  const trace::Dataset& ds = bench::shared_benchmark().dataset("P1");
  core::OpContext ctx;
  ctx.dataset = &ds;
  auto report = engine.run(spec.value(), ctx);
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.error().message.c_str());
    return 1;
  }
  const auto* feats =
      report.value().get<features::FeatureTable>("Features");
  std::printf(
      "-- Fig. 3: the executed Kitsune pipeline on %s (%zu packets) --\n",
      ds.id.c_str(), ds.packets());
  std::printf("produced %zu rows x %zu damped-statistic features\n\n",
              feats->rows, feats->cols);
  // Telemetry-first profile: rebuild the rows from the process registry's
  // span records (what a scraper sees) instead of the report's cached copy.
  std::printf("%s\n",
              core::render_op_profile(
                  core::profile_from_spans(
                      telemetry::Registry::process().snapshot(),
                      report.value().span_ids, "engine.op."),
                  report.value().peak_bytes)
                  .c_str());

  // The paper's point about a single shared extraction pass: the same
  // template with a typo fails BEFORE execution.
  auto broken = core::PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "damped_stats", "input": ["Paquets"], "output": "Features"},
  ])");
  auto check = engine.type_check(broken.value());
  std::printf("typo'd template rejected at type-check time:\n  %s\n",
              check.error().message.c_str());
  return 0;
}
