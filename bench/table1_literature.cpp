// Table 1: the literature survey of network-layer ML-based IoT anomaly
// detection algorithms, with the heterogeneity that motivates Lumen.
#include "fig_common.h"

#include "eval/literature.h"

int main() {
  using namespace lumen;
  bench::print_header("Table 1: literature survey");
  std::printf("%s\n", eval::render_literature_table().c_str());
  std::printf(
      "Takeaway (paper): the heterogeneity in classification granularity and\n"
      "evaluation datasets makes the reported precision values incomparable\n"
      "across rows — the motivating problem for Lumen.\n");
  return 0;
}
