// Micro-benchmark for the parallel evaluation sweep: times a serial
// (SerialGuard-forced) same-dataset sweep against the pool-parallel sweep on
// a reduced grid, verifies the result CSVs are byte-identical, and emits
// BENCH_sweep.json so future PRs can track the wall-clock trend.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "fig_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

lumen::eval::Benchmark fresh_benchmark() {
  lumen::eval::Benchmark::Options opts;
  opts.dataset_scale = 0.25;
  opts.max_train_rows = 1200;
  opts.max_test_rows = 1200;
  return lumen::eval::Benchmark(opts);
}

}  // namespace

int main() {
  using namespace lumen;
  bench::print_header("bench_sweep: serial vs parallel evaluation sweep");

  const std::vector<std::string> algos = {"A08", "A13", "A14"};
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lumen_bench_sweep").string();
  std::filesystem::create_directories(dir);

  // Serial baseline: fresh caches, every parallel_for forced inline.
  eval::Benchmark serial_bench = fresh_benchmark();
  eval::ResultStore serial_store;
  const Clock::time_point t_serial = Clock::now();
  {
    SerialGuard guard;
    eval::sweep_same_dataset(serial_bench, algos, serial_store, {},
                             /*parallel=*/false);
  }
  const double serial_s = seconds_since(t_serial);

  // Parallel sweep: fresh caches again so no work is amortized away.
  eval::Benchmark parallel_bench = fresh_benchmark();
  eval::ResultStore parallel_store;
  const Clock::time_point t_parallel = Clock::now();
  eval::sweep_same_dataset(parallel_bench, algos, parallel_store);
  const double parallel_s = seconds_since(t_parallel);

  const std::string serial_csv = dir + "/serial.csv";
  const std::string parallel_csv = dir + "/parallel.csv";
  (void)serial_store.save_csv(serial_csv);
  (void)parallel_store.save_csv(parallel_csv);
  const bool identical = file_bytes(serial_csv) == file_bytes(parallel_csv) &&
                         serial_store.size() > 0;

  const size_t threads = ThreadPool::global().size();
  const size_t hw_threads = std::thread::hardware_concurrency();
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const size_t pairs =
      eval::same_dataset_pairs(parallel_bench, algos).size();

  std::printf("grid: %zu algorithms, %zu (algo, dataset) pairs\n",
              algos.size(), pairs);
  std::printf("threads:           %zu (pool), %zu (hardware)\n", threads,
              hw_threads);
  std::printf("serial sweep:      %.3f s\n", serial_s);
  std::printf("parallel sweep:    %.3f s\n", parallel_s);
  std::printf("speedup:           %.2fx\n", speedup);
  std::printf("csv byte-identical: %s\n", identical ? "yes" : "NO (BUG)");

  // The sweeps above recorded one `eval.cell` span per grid cell plus pool
  // task counters into the process registry; surface the totals.
  const telemetry::Snapshot snap = telemetry::Registry::process().snapshot();
  size_t cell_spans = 0;
  for (const auto& s : snap.spans) cell_spans += s.name == "eval.cell";
  std::printf("registry: %llu cells ok, %llu pool tasks, %zu cell spans\n",
              static_cast<unsigned long long>(snap.counter_value("eval.cells")),
              static_cast<unsigned long long>(snap.counter_value("pool.tasks")),
              cell_spans);

  // JSON artifact via the unified telemetry serializer.
  telemetry::json::Writer w;
  w.kv_str("benchmark", "same_dataset_sweep");
  w.kv_u64("grid_pairs", pairs);
  w.kv_u64("threads", threads);
  w.kv_u64("hardware_threads", hw_threads);
  w.kv_f("serial_seconds", serial_s, 4);
  w.kv_f("parallel_seconds", parallel_s, 4);
  w.kv_f("speedup", speedup, 3);
  w.kv_bool("csv_identical", identical);
  w.kv_u64("pool_tasks", snap.counter_value("pool.tasks"));
  w.kv_u64("eval_cell_spans", cell_spans);
  if (std::FILE* f = std::fopen("BENCH_sweep.json", "w")) {
    const std::string doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("[artifact] BENCH_sweep.json\n");
  }
  return identical ? 0 : 1;
}
