// Figure 8: per-algorithm precision/recall when trained and tested on the
// same dataset (time-ordered 70/30 split). Prints Observation 2's
// same-dataset half.
#include "fig_common.h"

int main() {
  using namespace lumen;
  bench::print_header("Figure 8: same-dataset training and testing");

  eval::ResultStore store;
  const std::vector<std::string> algos = bench::all_algorithms();
  bench::sweep_same_dataset(algos, store);

  for (const char* metric : {"precision", "recall"}) {
    std::vector<eval::Distribution> dists;
    for (const std::string& a : algos) {
      std::vector<double> vals;
      for (const auto& row : store.query(a, "", "", metric)) {
        vals.push_back(row.value);
      }
      dists.push_back(eval::Distribution::from(a, vals));
    }
    std::printf("%s\n",
                eval::render_distributions(
                    std::string("Fig. 8 ") + metric + " (same dataset)", dists)
                    .c_str());
  }
  auto saved = store.save_csv("results/fig8_runs.csv");
  (void)saved;

  // Observation 2 (same-dataset half): count algorithms with at least one
  // dataset where precision (resp. recall) drops below 20%.
  size_t low_prec = 0, low_rec = 0;
  for (const std::string& a : algos) {
    bool lp = false, lr = false;
    for (const auto& row : store.query(a, "", "", "precision")) {
      lp |= row.value < 0.2;
    }
    for (const auto& row : store.query(a, "", "", "recall")) {
      lr |= row.value < 0.2;
    }
    low_prec += lp;
    low_rec += lr;
  }
  std::printf(
      "Observation 2 (same-source half): precision of %zu/%zu algorithms and\n"
      "recall of %zu/%zu algorithms drops below 20%% on at least one dataset\n"
      "(paper: 8/16 and 4/16) — several published designs do not generalize\n"
      "even in-distribution.\n",
      low_prec, algos.size(), low_rec, algos.size());
  return 0;
}
