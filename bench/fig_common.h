// Shared machinery for the figure-regeneration binaries: a process-wide
// Benchmark, sweep helpers over the strictly-faithful (algorithm, dataset)
// pairs, and small output utilities. Each bench binary reproduces one table
// or figure of the paper and prints the corresponding observation.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "eval/benchmark.h"
#include "eval/report.h"
#include "eval/results.h"
#include "eval/sweep.h"

namespace lumen::bench {

using eval::Benchmark;
using eval::EvalRecord;
using eval::ResultStore;

inline Benchmark& shared_benchmark() {
  static Benchmark bench = [] {
    Benchmark::Options opts;
    opts.dataset_scale = 0.5;  // CI-sized captures; shapes preserved
    opts.max_train_rows = 2000;
    opts.max_test_rows = 2000;
    return Benchmark(opts);
  }();
  return bench;
}

/// Every algorithm id, surveyed + synthesized.
inline std::vector<std::string> all_algorithms(bool include_synth = false) {
  std::vector<std::string> ids = core::surveyed_algorithm_ids();
  if (include_synth) {
    for (const std::string& id : core::synthesized_algorithm_ids()) {
      ids.push_back(id);
    }
  }
  return ids;
}

/// The strictly-faithful dataset ids for an algorithm.
inline std::vector<std::string> faithful_datasets(const std::string& algo_id) {
  return eval::faithful_datasets(shared_benchmark(), algo_id);
}

/// Run every same-dataset pair across the pool; records land in `store` in
/// canonical (serial) order, and `on_run` (if set) sees each run for
/// per-attack post-processing.
inline void sweep_same_dataset(const std::vector<std::string>& algos,
                               ResultStore& store,
                               const eval::RunCallback& on_run = {}) {
  eval::sweep_same_dataset(shared_benchmark(), algos, store, on_run);
}

/// Run every cross-dataset pair (train != test) among faithful datasets,
/// across the pool, merging in canonical order.
inline void sweep_cross_dataset(const std::vector<std::string>& algos,
                                ResultStore& store) {
  eval::sweep_cross_dataset(shared_benchmark(), algos, store);
}

/// Warm the shared benchmark's caches for explicit (algo, dataset) pairs.
inline void prefetch_same_dataset(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  eval::prefetch_same_dataset(shared_benchmark(), pairs);
}

/// Write CSV artifacts next to the binary under ./results/.
inline void write_artifact(const std::string& name, const std::string& text) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("[artifact] %s\n", path.c_str());
  }
}

inline void print_header(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("Lumen reproduction — %s\n", what.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace lumen::bench
