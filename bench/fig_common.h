// Shared machinery for the figure-regeneration binaries: a process-wide
// Benchmark, sweep helpers over the strictly-faithful (algorithm, dataset)
// pairs, and small output utilities. Each bench binary reproduces one table
// or figure of the paper and prints the corresponding observation.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/benchmark.h"
#include "eval/report.h"
#include "eval/results.h"

namespace lumen::bench {

using eval::Benchmark;
using eval::EvalRecord;
using eval::ResultStore;

inline Benchmark& shared_benchmark() {
  static Benchmark bench = [] {
    Benchmark::Options opts;
    opts.dataset_scale = 0.5;  // CI-sized captures; shapes preserved
    opts.max_train_rows = 2000;
    opts.max_test_rows = 2000;
    return Benchmark(opts);
  }();
  return bench;
}

/// Every algorithm id, surveyed + synthesized.
inline std::vector<std::string> all_algorithms(bool include_synth = false) {
  std::vector<std::string> ids = core::surveyed_algorithm_ids();
  if (include_synth) {
    for (const std::string& id : core::synthesized_algorithm_ids()) {
      ids.push_back(id);
    }
  }
  return ids;
}

/// The strictly-faithful dataset ids for an algorithm.
inline std::vector<std::string> faithful_datasets(const std::string& algo_id) {
  Benchmark& bench = shared_benchmark();
  const core::AlgorithmDef* algo = core::find_algorithm(algo_id);
  std::vector<std::string> out;
  for (const std::string& ds : trace::all_dataset_ids()) {
    if (algo != nullptr && core::strict_faithful(*algo, bench.dataset(ds))) {
      out.push_back(ds);
    }
  }
  return out;
}

/// Run every same-dataset pair; records land in `store`, and `on_run` (if
/// set) sees each run for per-attack post-processing.
template <typename OnRun>
void sweep_same_dataset(const std::vector<std::string>& algos,
                        ResultStore& store, OnRun on_run) {
  Benchmark& bench = shared_benchmark();
  for (const std::string& algo : algos) {
    for (const std::string& ds : faithful_datasets(algo)) {
      auto run = bench.same_dataset(algo, ds);
      if (!run.ok()) {
        std::fprintf(stderr, "[skip] %s on %s: %s\n", algo.c_str(), ds.c_str(),
                     run.error().message.c_str());
        continue;
      }
      store.add_record(run.value().record);
      on_run(run.value());
    }
  }
}

inline void sweep_same_dataset(const std::vector<std::string>& algos,
                               ResultStore& store) {
  sweep_same_dataset(algos, store, [](const Benchmark::RunOutput&) {});
}

/// Run every cross-dataset pair (train != test) among faithful datasets.
inline void sweep_cross_dataset(const std::vector<std::string>& algos,
                                ResultStore& store) {
  Benchmark& bench = shared_benchmark();
  for (const std::string& algo : algos) {
    const std::vector<std::string> datasets = faithful_datasets(algo);
    for (const std::string& train : datasets) {
      for (const std::string& test : datasets) {
        if (train == test) continue;
        auto run = bench.cross_dataset(algo, train, test);
        if (!run.ok()) {
          std::fprintf(stderr, "[skip] %s %s->%s: %s\n", algo.c_str(),
                       train.c_str(), test.c_str(),
                       run.error().message.c_str());
          continue;
        }
        store.add_record(run.value().record);
      }
    }
  }
}

/// Write CSV artifacts next to the binary under ./results/.
inline void write_artifact(const std::string& name, const std::string& text) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("[artifact] %s\n", path.c_str());
  }
}

inline void print_header(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("Lumen reproduction — %s\n", what.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace lumen::bench
