// google-benchmark microbenchmarks for the model zoo: train and score
// throughput on a representative IDS-shaped table.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/bayes.h"
#include "ml/forest.h"
#include "ml/gmm.h"
#include "ml/kernel.h"
#include "ml/kitnet.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace {

using namespace lumen;
using ml::FeatureTable;

FeatureTable ids_shaped_table(size_t rows, size_t cols) {
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("f" + std::to_string(c));
  FeatureTable t = FeatureTable::make(rows, names);
  Rng rng(12345);
  for (size_t r = 0; r < rows; ++r) {
    const bool mal = rng.bernoulli(0.2);
    for (size_t c = 0; c < cols; ++c) {
      t.at(r, c) = rng.lognormal(mal ? 1.0 : 0.0, 1.0);
    }
    t.labels[r] = mal ? 1 : 0;
  }
  return t;
}

template <typename M>
void bench_fit(benchmark::State& state, M make) {
  const FeatureTable t = ids_shaped_table(
      static_cast<size_t>(state.range(0)), 20);
  for (auto _ : state) {
    auto m = make();
    m->fit(t);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

template <typename M>
void bench_score(benchmark::State& state, M make) {
  const FeatureTable t = ids_shaped_table(1000, 20);
  auto m = make();
  m->fit(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->score(t));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}

void BM_FitDecisionTree(benchmark::State& state) {
  bench_fit(state, [] { return std::make_shared<ml::DecisionTree>(); });
}
BENCHMARK(BM_FitDecisionTree)->Arg(500)->Arg(2000);

void BM_FitRandomForest(benchmark::State& state) {
  bench_fit(state, [] { return std::make_shared<ml::RandomForest>(); });
}
BENCHMARK(BM_FitRandomForest)->Arg(500)->Arg(2000);

void BM_FitGaussianNB(benchmark::State& state) {
  bench_fit(state, [] { return std::make_shared<ml::GaussianNB>(); });
}
BENCHMARK(BM_FitGaussianNB)->Arg(2000);

void BM_FitLinearSvm(benchmark::State& state) {
  bench_fit(state, [] { return std::make_shared<ml::LinearSvm>(); });
}
BENCHMARK(BM_FitLinearSvm)->Arg(2000);

void BM_FitOcsvm(benchmark::State& state) {
  bench_fit(state, [] { return std::make_shared<ml::OneClassSvm>(); });
}
BENCHMARK(BM_FitOcsvm)->Arg(500);

void BM_FitGmm(benchmark::State& state) {
  bench_fit(state, [] { return std::make_shared<ml::Gmm>(); });
}
BENCHMARK(BM_FitGmm)->Arg(1000);

void BM_FitKitNet(benchmark::State& state) {
  bench_fit(state, [] { return std::make_shared<ml::KitNet>(); });
}
BENCHMARK(BM_FitKitNet)->Arg(1000);

void BM_FitMlp(benchmark::State& state) {
  bench_fit(state, [] {
    ml::MlpConfig cfg;
    cfg.epochs = 10;
    return std::make_shared<ml::Mlp>(cfg);
  });
}
BENCHMARK(BM_FitMlp)->Arg(1000);

void BM_ScoreRandomForest(benchmark::State& state) {
  bench_score(state, [] { return std::make_shared<ml::RandomForest>(); });
}
BENCHMARK(BM_ScoreRandomForest);

void BM_ScoreKitNet(benchmark::State& state) {
  bench_score(state, [] { return std::make_shared<ml::KitNet>(); });
}
BENCHMARK(BM_ScoreKitNet);

void BM_ScoreKnn(benchmark::State& state) {
  bench_score(state, [] { return std::make_shared<ml::Knn>(); });
}
BENCHMARK(BM_ScoreKnn);

void BM_NystromTransform(benchmark::State& state) {
  const FeatureTable t = ids_shaped_table(1000, 20);
  ml::NystromMap map;
  map.fit(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.transform(t));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_NystromTransform);

}  // namespace

BENCHMARK_MAIN();
