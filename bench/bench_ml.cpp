// Model-zoo scoring benchmark: batched (dense-kernel) scoring vs the pre-PR
// per-row scalar path for every reworked model, plus raw kernel throughput
// for the dense library itself. Emits BENCH_ml.json with per-model rows/s,
// the batched-vs-per-row speedup, and kernel GFLOP/s per backend.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "ml/dense.h"
#include "ml/gmm.h"
#include "ml/kernel.h"
#include "ml/kitnet.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/mlp.h"

namespace {

using namespace lumen;
using ml::FeatureTable;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 5;          // best-of repetitions per timed config
constexpr size_t kScoreRows = 4000;
constexpr size_t kCols = 20;

FeatureTable ids_shaped_table(size_t rows, size_t cols) {
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("f" + std::to_string(c));
  FeatureTable t = FeatureTable::make(rows, names);
  Rng rng(12345);
  for (size_t r = 0; r < rows; ++r) {
    const bool mal = rng.bernoulli(0.2);
    for (size_t c = 0; c < cols; ++c) {
      t.at(r, c) = rng.lognormal(mal ? 1.0 : 0.0, 1.0);
    }
    t.labels[r] = mal ? 1 : 0;
  }
  return t;
}

/// Best-of-kReps wall time of fn(), in seconds.
double best_seconds(const std::function<void()>& fn) {
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const Clock::time_point t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

struct ModelResult {
  std::string name;
  double perrow_rows_per_sec = 0.0;   // pre-PR path, forced-scalar kernels
  double batched_rows_per_sec = 0.0;  // blocked path, active backend
  double speedup = 0.0;
};

/// Time `perrow` under forced-scalar kernels (the honest pre-PR baseline)
/// and `batched` under the active backend.
ModelResult bench_model(const std::string& name, size_t rows,
                        const std::function<void()>& perrow,
                        const std::function<void()>& batched) {
  ModelResult r;
  r.name = name;
  {
    ml::dense::ScopedBackend guard(ml::dense::Backend::kScalar);
    r.perrow_rows_per_sec = static_cast<double>(rows) / best_seconds(perrow);
  }
  r.batched_rows_per_sec = static_cast<double>(rows) / best_seconds(batched);
  r.speedup = r.perrow_rows_per_sec > 0.0
                  ? r.batched_rows_per_sec / r.perrow_rows_per_sec
                  : 0.0;
  std::printf("%-14s %12.0f %14.0f %8.2fx\n", name.c_str(),
              r.perrow_rows_per_sec, r.batched_rows_per_sec, r.speedup);
  return r;
}

struct KernelResult {
  std::string name;
  std::string backend;
  double gflops = 0.0;
};

KernelResult bench_gemm(ml::dense::Backend be, const char* backend_name) {
  constexpr size_t kM = 256, kN = 256, kK = 256;
  Rng rng(7);
  std::vector<double> a(kM * kK), b(kN * kK), c(kM * kN);
  for (double& v : a) v = rng.normal(0.0, 1.0);
  for (double& v : b) v = rng.normal(0.0, 1.0);
  ml::dense::ScopedBackend guard(be);
  const double secs = best_seconds([&] {
    ml::dense::gemm_nt(kM, kN, kK, a.data(), kK, b.data(), kK, nullptr, 0.0,
                       c.data(), kN);
  });
  KernelResult r;
  r.name = "gemm_nt_256";
  r.backend = backend_name;
  r.gflops = 2.0 * kM * kN * kK / secs / 1e9;
  std::printf("%-14s %-8s %10.2f GFLOP/s\n", r.name.c_str(), backend_name,
              r.gflops);
  return r;
}

KernelResult bench_sq_dist(ml::dense::Backend be, const char* backend_name) {
  constexpr size_t kM = 256, kR = 512, kN = 32;
  Rng rng(8);
  std::vector<double> x(kM * kN), y(kR * kN), d(kM * kR);
  for (double& v : x) v = rng.normal(0.0, 1.0);
  for (double& v : y) v = rng.normal(0.0, 1.0);
  ml::dense::ScopedBackend guard(be);
  const double secs = best_seconds([&] {
    ml::dense::sq_dist_batch(kM, kR, kN, x.data(), kN, y.data(), kN, nullptr,
                             nullptr, d.data(), kR);
  });
  KernelResult r;
  r.name = "sq_dist_batch";
  r.backend = backend_name;
  r.gflops = 2.0 * kM * kR * kN / secs / 1e9;  // GEMM term dominates
  std::printf("%-14s %-8s %10.2f GFLOP/s\n", r.name.c_str(), backend_name,
              r.gflops);
  return r;
}

KernelResult bench_sigmoid(ml::dense::Backend be, const char* backend_name) {
  constexpr size_t kN = 1 << 16;
  Rng rng(9);
  std::vector<double> base(kN), x(kN);
  for (double& v : base) v = rng.normal(0.0, 2.0);
  ml::dense::ScopedBackend guard(be);
  const double secs = best_seconds([&] {
    std::copy(base.begin(), base.end(), x.begin());
    ml::dense::sigmoid_sweep(kN, x.data());
  });
  KernelResult r;
  r.name = "sigmoid_sweep";
  r.backend = backend_name;
  r.gflops = static_cast<double>(kN) / secs / 1e9;  // Gelem/s, not flops
  std::printf("%-14s %-8s %10.2f Gelem/s\n", r.name.c_str(), backend_name,
              r.gflops);
  return r;
}

}  // namespace

int main() {
  std::printf("bench_ml: batched model scoring vs the per-row scalar path\n\n");
  const char* backend =
      ml::dense::backend_name(ml::dense::active_backend());
  std::printf("active kernel backend: %s (LUMEN_SIMD to override)\n", backend);
  std::printf("threads: %zu (pool), %zu (hardware)\n\n",
              ThreadPool::global().size(), ThreadPool::hardware_threads());

  const FeatureTable t = ids_shaped_table(kScoreRows, kCols);
  const FeatureTable train = ids_shaped_table(1500, kCols);

  std::printf("%-14s %12s %14s %9s\n", "model", "perrow r/s", "batched r/s",
              "speedup");

  std::vector<ModelResult> models;
  {
    ml::MlpConfig cfg;
    cfg.epochs = 10;
    ml::Mlp m(cfg);
    m.fit(train);
    models.push_back(bench_model(
        "MLP", kScoreRows, [&] { m.score_perrow(t); }, [&] { m.score(t); }));
  }
  {
    ml::KitNet m;
    m.fit(train);
    models.push_back(bench_model(
        "KitNET", kScoreRows, [&] { m.score_perrow(t); },
        [&] { m.score(t); }));
  }
  {
    ml::AutoEncoderDetector m;
    m.fit(train);
    models.push_back(bench_model(
        "AutoEncoder", kScoreRows, [&] { m.score_perrow(t); },
        [&] { m.score(t); }));
  }
  {
    ml::Knn m;
    m.fit(train);
    models.push_back(bench_model(
        "kNN", kScoreRows, [&] { m.score_perrow(t); }, [&] { m.score(t); }));
  }
  {
    ml::OneClassSvm m;
    m.fit(train);
    models.push_back(bench_model(
        "OCSVM", kScoreRows, [&] { m.score_perrow(t); },
        [&] { m.score(t); }));
  }
  {
    ml::Gmm m;
    m.fit(train);
    models.push_back(bench_model(
        "GMM", kScoreRows, [&] { m.score_perrow(t); }, [&] { m.score(t); }));
  }
  {
    ml::LinearSvm m;
    m.fit(train);
    models.push_back(bench_model(
        "LinearSVM", kScoreRows, [&] { m.score_perrow(t); },
        [&] { m.score(t); }));
  }

  std::printf("\nkernel throughput (best of %d):\n", kReps);
  std::vector<KernelResult> kernels;
  kernels.push_back(bench_gemm(ml::dense::Backend::kScalar, "scalar"));
  kernels.push_back(bench_sq_dist(ml::dense::Backend::kScalar, "scalar"));
  kernels.push_back(bench_sigmoid(ml::dense::Backend::kScalar, "scalar"));
  if (ml::dense::avx2_available()) {
    kernels.push_back(bench_gemm(ml::dense::Backend::kAvx2, "avx2"));
    kernels.push_back(bench_sq_dist(ml::dense::Backend::kAvx2, "avx2"));
    kernels.push_back(bench_sigmoid(ml::dense::Backend::kAvx2, "avx2"));
  }

  // JSON artifact via the unified telemetry serializer.
  telemetry::json::Writer w;
  w.kv_str("benchmark", "ml_scoring");
  w.kv_str("backend", backend);
  w.kv_u64("rows", kScoreRows);
  w.kv_u64("cols", kCols);
  w.kv_i64("reps", kReps);
  w.kv_u64("threads", ThreadPool::global().size());
  w.begin_array("models");
  for (const ModelResult& m : models) {
    w.begin_inline_object();
    w.kv_str("name", m.name);
    w.kv_f("perrow_rows_per_sec", m.perrow_rows_per_sec, 1);
    w.kv_f("batched_rows_per_sec", m.batched_rows_per_sec, 1);
    w.kv_f("speedup", m.speedup, 3);
    w.end();
  }
  w.end();
  w.begin_array("kernels");
  for (const KernelResult& k : kernels) {
    w.begin_inline_object();
    w.kv_str("name", k.name);
    w.kv_str("backend", k.backend);
    w.kv_f("gflops", k.gflops, 3);
    w.end();
  }
  w.end();
  if (std::FILE* f = std::fopen("BENCH_ml.json", "w")) {
    const std::string doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("\n[artifact] BENCH_ml.json\n");
  }
  return 0;
}
