// Telemetry overhead benchmark: per-operation cost of each instrument on the
// hot path (counter add, gauge set, histogram record, span enter/exit) and
// the end-to-end throughput delta of the ingest runtime with telemetry
// enabled (process-registry instruments + stage histograms) vs disabled
// (Options.registry = nullptr, the pre-telemetry accounting path). Emits
// BENCH_telemetry.json; tools/check_bench.sh fails the gate if the ingest
// overhead exceeds 2%.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "common/telemetry.h"
#include "core/ingest.h"
#include "core/stream.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kMicroReps = 5;       // best-of repetitions per micro loop
constexpr size_t kMicroIters = 1u << 20;
constexpr int kIngestReps = 7;      // interleaved reps per ingest variant
constexpr int kStreamRepeats = 8;   // sweep stream = streamed region x repeats

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-kMicroReps cost of one iteration of fn(), in nanoseconds.
template <typename Fn>
double micro_ns(Fn&& fn) {
  double best = 1e30;
  for (int rep = 0; rep < kMicroReps; ++rep) {
    const Clock::time_point t0 = Clock::now();
    for (size_t i = 0; i < kMicroIters; ++i) fn(i);
    best = std::min(best, seconds_since(t0));
  }
  return best / static_cast<double>(kMicroIters) * 1e9;
}

}  // namespace

int main() {
  using namespace lumen;
  std::printf("bench_telemetry: instrument micro-costs and ingest overhead\n\n");
  std::printf("threads: %zu (pool), %zu (hardware)\n\n",
              ThreadPool::global().size(), ThreadPool::hardware_threads());

  // ---- Micro-costs: single-threaded hot-path cost per operation. ----
  telemetry::Registry reg;
  telemetry::Counter& ctr = reg.counter("micro.counter");
  telemetry::Gauge& gauge = reg.gauge("micro.gauge");
  telemetry::Histogram& hist =
      reg.histogram("micro.hist", telemetry::Histogram::default_ns_bounds());

  const double counter_ns = micro_ns([&](size_t) { ctr.add(1); });
  const double gauge_ns =
      micro_ns([&](size_t i) { gauge.set(static_cast<double>(i)); });
  const double hist_ns =
      micro_ns([&](size_t i) { hist.record(static_cast<double>(i & 0xffff)); });
  const double span_ns = micro_ns([&](size_t) {
    telemetry::Span span(&reg, "micro.span");
    span.stop();
  });
  std::printf("%-24s %10.1f ns/op\n", "counter add", counter_ns);
  std::printf("%-24s %10.1f ns/op\n", "gauge set", gauge_ns);
  std::printf("%-24s %10.1f ns/op\n", "histogram record", hist_ns);
  std::printf("%-24s %10.1f ns/op\n", "span enter+exit", span_ns);

  // ---- Ingest overhead: telemetry on vs off, same stream, same scorers.
  // "off" = Options.registry == nullptr: core counters land in a runtime-
  // local scratch registry (same cost as the old bespoke atomics) and the
  // extended instruments (stage histograms, queue gauges, clock reads) are
  // skipped entirely. "on" = a dedicated registry with everything enabled.
  const trace::Dataset ds = trace::make_dataset("P1", 1.0);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  core::OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});

  netio::Trace big;
  big.link = ds.trace.link;
  const double span = ds.trace.raw.back().ts - ds.trace.raw[grace].ts + 0.001;
  for (int rep = 0; rep < kStreamRepeats; ++rep) {
    for (size_t i = grace; i < ds.trace.raw.size(); ++i) {
      netio::RawPacket p = ds.trace.raw[i];
      p.ts += rep * span;
      big.raw.push_back(std::move(p));
    }
  }
  netio::parse_trace(big);
  const double n = static_cast<double>(big.view.size());
  std::printf("\ningest stream: P1 streamed region x%d = %zu packets\n",
              kStreamRepeats, big.view.size());

  telemetry::Registry ingest_reg;
  auto drain_seconds = [&](telemetry::Registry* registry) {
    netio::TraceReplaySource src(big, netio::ReplayOptions{});
    core::IngestRuntime::Options opts;
    opts.registry = registry;
    auto factory = [&proto](size_t) {
      return std::make_unique<core::KitsuneScorer>(proto);
    };
    core::IngestRuntime rt(opts, factory, nullptr);
    const Clock::time_point t0 = Clock::now();
    auto stats = rt.run(src);
    const double secs = seconds_since(t0);
    if (!stats.ok() || stats.value().scored == 0) return -1.0;
    return secs;
  };

  // Interleave reps so slow host phases hit both variants alike.
  double off_s = 1e30, on_s = 1e30;
  for (int rep = 0; rep < kIngestReps; ++rep) {
    const double off = drain_seconds(nullptr);
    const double on = drain_seconds(&ingest_reg);
    if (off < 0.0 || on < 0.0) {
      std::fprintf(stderr, "ingest run failed\n");
      return 1;
    }
    off_s = std::min(off_s, off);
    on_s = std::min(on_s, on);
  }
  const double off_rate = n / off_s;
  const double on_rate = n / on_s;
  // Best-of comparison: overhead is how much slower the best instrumented
  // run is than the best uninstrumented run (negative = within noise).
  const double overhead_pct = (off_rate - on_rate) / off_rate * 100.0;
  std::printf("uninstrumented drain: %.0f pkts/s\n", off_rate);
  std::printf("instrumented drain:   %.0f pkts/s\n", on_rate);
  std::printf("overhead:             %.2f%%\n", overhead_pct);

  // Sanity-scrape the instrumented registry: every scored packet must have
  // passed through the stage histograms' batches.
  const telemetry::Snapshot snap = ingest_reg.snapshot();
  const auto* extract = snap.find_histogram("ingest.stage.extract_ns");
  const uint64_t scored = snap.counter_value("ingest.scored");
  std::printf("instrumented registry: %llu scored, %llu extract samples\n",
              static_cast<unsigned long long>(scored),
              static_cast<unsigned long long>(extract ? extract->count : 0));

  telemetry::json::Writer w;
  w.kv_str("benchmark", "telemetry_overhead");
  w.kv_u64("micro_iters", kMicroIters);
  w.kv_i64("micro_reps", kMicroReps);
  w.begin_inline_object("micro_ns_per_op");
  w.kv_f("counter_add", counter_ns, 2);
  w.kv_f("gauge_set", gauge_ns, 2);
  w.kv_f("histogram_record", hist_ns, 2);
  w.kv_f("span_enter_exit", span_ns, 2);
  w.end();
  w.kv_u64("ingest_packets", big.view.size());
  w.kv_i64("ingest_reps", kIngestReps);
  w.kv_f("uninstrumented_pkts_per_sec", off_rate, 1);
  w.kv_f("instrumented_pkts_per_sec", on_rate, 1);
  w.kv_f("overhead_pct", overhead_pct, 3);
  w.kv_u64("instrumented_scored", scored);
  w.kv_u64("instrumented_extract_samples", extract ? extract->count : 0);
  if (std::FILE* f = std::fopen("BENCH_telemetry.json", "w")) {
    const std::string doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("[artifact] BENCH_telemetry.json\n");
  }
  return 0;
}
