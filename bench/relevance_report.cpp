// §6 "understanding relevant features": for the flow-statistics algorithms,
// report which features separate each attack from benign traffic, and the
// forest's split-importance ranking. Confirms the paper's Q4 explanation —
// DoS is caught by flag-churn / port-entropy / length-deviation features.
#include "fig_common.h"

#include "eval/relevance.h"

int main() {
  using namespace lumen;
  bench::print_header("Feature relevance per attack (§6)");

  bench::Benchmark& bench = bench::shared_benchmark();

  for (const auto& [algo, ds] : std::vector<std::pair<std::string, std::string>>{
           {"A10", "F1"}, {"A10", "F3"}, {"A14", "F4"}, {"A13", "F0"}}) {
    auto reports = eval::per_attack_relevance(bench, algo, ds, 4);
    if (!reports.ok()) {
      std::fprintf(stderr, "[skip] %s/%s: %s\n", algo.c_str(), ds.c_str(),
                   reports.error().message.c_str());
      continue;
    }
    std::printf("-- %s on %s: per-attack separation (|Cohen's d|) --\n",
                algo.c_str(), ds.c_str());
    for (const auto& rep : reports.value()) {
      std::printf("  %-16s:", trace::attack_name(rep.attack));
      for (const auto& f : rep.top) {
        std::printf("  %s (%.1f)", f.feature.c_str(), f.score);
      }
      std::printf("\n");
    }

    auto feats = bench.features(algo, ds);
    if (feats.ok()) {
      const auto imp = eval::forest_importance(*feats.value());
      std::printf("  forest split importance:");
      for (size_t i = 0; i < std::min<size_t>(5, imp.size()); ++i) {
        std::printf("  %s (%.2f)", imp[i].feature.c_str(), imp[i].score);
      }
      std::printf("\n\n");
    }
  }

  std::printf(
      "As the paper notes for DoS (Q4), rate-of-change of TCP flags, source-"
      "port\nentropy, and packet-length deviation dominate the DoS columns.\n");
  return 0;
}
