// Figure 10: median precision/recall across algorithms for every train x
// test dataset combination (connection-level grid). Reproduces the diagonal
// dominance, the train/test asymmetry, and the F5 (Torii) anomaly. Prints
// Observation 3.
#include <map>

#include "fig_common.h"

#include "features/stats.h"

int main() {
  using namespace lumen;
  bench::print_header("Figure 10: training-dataset choice matters");

  eval::ResultStore store;
  // Connection-granularity grid (10x10), as in the paper's figure.
  std::vector<std::string> algos;
  for (const std::string& a : bench::all_algorithms()) {
    const core::AlgorithmDef* def = core::find_algorithm(a);
    if (def->granularity != trace::Granularity::kPacket) algos.push_back(a);
  }
  bench::sweep_same_dataset(algos, store);
  bench::sweep_cross_dataset(algos, store);

  const std::vector<std::string> datasets = trace::connection_dataset_ids();
  for (const char* metric : {"precision", "recall"}) {
    eval::Heatmap heat = eval::Heatmap::make(
        std::string("Fig. 10 median ") + metric +
            " across algorithms (rows = TEST dataset, cols = TRAIN dataset)",
        datasets, datasets);
    for (size_t c = 0; c < datasets.size(); ++c) {
      for (size_t r = 0; r < datasets.size(); ++r) {
        std::vector<double> vals;
        for (const auto& row :
             store.query("", datasets[c], datasets[r], metric)) {
          vals.push_back(row.value);
        }
        if (!vals.empty()) {
          heat.at(r, c) = lumen::features::median(vals);
        }
      }
    }
    std::printf("%s\n", heat.render().c_str());
    bench::write_artifact(std::string("fig10_") + metric + ".csv",
                          heat.to_csv());

    if (std::string(metric) == "precision") {
      // Diagonal dominance.
      double diag = 0.0, off = 0.0;
      size_t n_off = 0;
      for (size_t i = 0; i < datasets.size(); ++i) {
        diag += heat.at(i, i);
        for (size_t j = 0; j < datasets.size(); ++j) {
          if (i != j && !std::isnan(heat.at(i, j))) {
            off += heat.at(i, j);
            ++n_off;
          }
        }
      }
      diag /= static_cast<double>(datasets.size());
      off /= static_cast<double>(n_off);
      std::printf(
          "Diagonal (same-dataset) median precision %.2f vs off-diagonal "
          "%.2f.\n",
          diag, off);

      // Train/test asymmetry (the paper's F5/F6 example generalized): find
      // the most asymmetric pair in the grid.
      double best_gap = 0.0;
      size_t bi = 0, bj = 0;
      for (size_t i = 0; i < datasets.size(); ++i) {
        for (size_t j = i + 1; j < datasets.size(); ++j) {
          const double a = heat.at(j, i);  // train i -> test j
          const double b = heat.at(i, j);  // train j -> test i
          if (std::isnan(a) || std::isnan(b)) continue;
          if (std::fabs(a - b) > best_gap) {
            best_gap = std::fabs(a - b);
            bi = i;
            bj = j;
          }
        }
      }
      std::printf(
          "Asymmetry: training on %s and testing on %s gives median "
          "precision %.2f,\nwhile the reverse direction gives %.2f — "
          "certain datasets are better to\ntrain on than to transfer into "
          "(paper's F5/F6 example: 0.90 vs 0.19).\n",
          datasets[bi].c_str(), datasets[bj].c_str(), heat.at(bj, bi),
          heat.at(bi, bj));

      // The F5 (Torii) hard-target finding: no other training dataset
      // produces a usable detector for the stealthy C2 traffic.
      const size_t f5 = 5;
      double into_f5_max = 0.0;
      for (size_t j = 0; j < datasets.size(); ++j) {
        if (j != f5 && !std::isnan(heat.at(f5, j))) {
          into_f5_max = std::max(into_f5_max, heat.at(f5, j));
        }
      }
      std::printf(
          "F5 (Torii): no training dataset generalizes to F5 — best median\n"
          "precision when testing on F5 with foreign training data is %.2f,\n"
          "vs %.2f when training on F5 itself. %s the paper's finding that\n"
          "F5 is the hardest transfer target.\n\n",
          into_f5_max, heat.at(f5, f5),
          into_f5_max < heat.at(f5, f5) ? "REPRODUCES" : "DOES NOT reproduce");
    }
  }
  auto saved = store.save_csv("results/fig10_runs.csv");
  (void)saved;
  std::printf(
      "Observation 3: strategically selecting the training dataset leads to\n"
      "a more accurate anomaly detection model (greener columns = better\n"
      "training sets; redder rows = harder test sets).\n");
  return 0;
}
