// §5.2 validation harness: (i) Lumen pipeline features match independent
// reference computations exactly (the paper validates nprint/Kitsune/
// smartdet feature equality); (ii) Lumen scores next to the papers' reported
// numbers for the §5.2 comparison cases.
#include <map>

#include "fig_common.h"

#include "features/stats.h"

namespace {

using namespace lumen;

size_t check_nprint(const trace::Dataset& ds) {
  auto t = core::compute_features(*core::find_algorithm("A02"), ds);
  if (!t.ok()) return SIZE_MAX;
  const auto& f = t.value();
  size_t mismatches = 0;
  for (size_t r = 0; r < f.rows; ++r) {
    const auto& v = ds.trace.view[static_cast<size_t>(f.unit_id[r])];
    const auto& raw = ds.trace.raw[static_cast<size_t>(f.unit_id[r])].data;
    size_t col = 0;
    auto check_layer = [&](int off, size_t bytes, bool present) {
      for (size_t b = 0; b < bytes; ++b) {
        for (int bit = 7; bit >= 0; --bit, ++col) {
          const double expect =
              present
                  ? (((raw[static_cast<size_t>(off) + b] >> bit) & 1) != 0
                         ? 1.0
                         : 0.0)
                  : -1.0;
          mismatches += f.at(r, col) != expect;
        }
      }
    };
    check_layer(v.l4_off, 20, v.proto == netio::IpProto::kTcp);
    check_layer(v.l4_off, 8, v.proto == netio::IpProto::kUdp);
    check_layer(v.ip_off, 20, v.has_ip);
  }
  return mismatches;
}

size_t check_kitsune(const trace::Dataset& ds) {
  auto t = core::compute_features(*core::find_algorithm("A06"), ds);
  if (!t.ok()) return SIZE_MAX;
  const auto& f = t.value();
  size_t mismatches = 0;
  std::map<uint32_t, features::DampedStat> ref;
  for (size_t r = 0; r < f.rows; ++r) {
    const auto& v = ds.trace.view[static_cast<size_t>(f.unit_id[r])];
    if (!v.has_ip) continue;
    auto& st = ref.try_emplace(v.src_ip, 5.0).first->second;
    st.insert(v.wire_len, v.ts);
    mismatches += std::fabs(f.at(r, 3) - st.weight()) > 1e-9;
    mismatches += std::fabs(f.at(r, 4) - st.mean()) > 1e-9;
    mismatches += std::fabs(f.at(r, 5) - st.stddev()) > 1e-9;
  }
  return mismatches;
}

size_t check_smartdet(const trace::Dataset& ds) {
  auto t = core::compute_features(*core::find_algorithm("A10"), ds);
  if (!t.ok()) return SIZE_MAX;
  const auto& f = t.value();
  size_t col = f.cols;
  for (size_t c = 0; c < f.cols; ++c) {
    if (f.col_names[c] == "sport_entropy") col = c;
  }
  const auto flows = flow::assemble_uniflows(ds.trace);
  size_t mismatches = 0;
  for (size_t r = 0; r < f.rows && r < flows.size(); ++r) {
    std::map<uint16_t, double> counts;
    for (uint32_t p : flows[r].pkts) counts[ds.trace.view[p].src_port] += 1.0;
    std::vector<double> c;
    for (auto& [k, n] : counts) c.push_back(n);
    mismatches += std::fabs(f.at(r, col) - features::entropy_bits(c)) > 1e-9;
  }
  return mismatches;
}

}  // namespace

int main() {
  using namespace lumen;
  bench::print_header("Section 5.2: validating the correctness of Lumen");

  // ---- Step 1: feature equality against reference computations.
  std::printf("-- feature equality vs independent reference computation --\n");
  const trace::Dataset& p1 = bench::shared_benchmark().dataset("P1");
  const trace::Dataset& f1 = bench::shared_benchmark().dataset("F1");
  const size_t m1 = check_nprint(p1);
  const size_t m2 = check_kitsune(p1);
  const size_t m3 = check_smartdet(f1);
  std::printf("A01-A04 (nprint bit features)   on P1: %zu mismatching bits %s\n",
              m1, m1 == 0 ? "-> features match exactly" : "!!");
  std::printf("A06 (Kitsune damped statistics) on P1: %zu mismatching values %s\n",
              m2, m2 == 0 ? "-> features match exactly" : "!!");
  std::printf("A10 (smartdet flow features)    on F1: %zu mismatching values %s\n",
              m3, m3 == 0 ? "-> features match exactly" : "!!");

  // ---- Step 2: Lumen scores next to the papers' reported numbers.
  std::printf("\n-- Lumen-measured vs originally-reported (shape check) --\n");
  std::printf("%-42s %-12s %s\n", "case", "reported", "lumen (this substrate)");
  bench::Benchmark& bench = bench::shared_benchmark();

  // Warm feature/model caches for every §5.2 case across the pool; the
  // serial queries below then reuse the cached artifacts.
  bench::prefetch_same_dataset({{"A10", "F1"},
                                {"A14", "F4"}, {"A14", "F5"}, {"A14", "F6"},
                                {"A14", "F7"}, {"A14", "F8"}, {"A14", "F9"},
                                {"A07", "F0"}, {"A07", "F1"}, {"A07", "F2"},
                                {"A07", "F4"}, {"A07", "F5"}, {"A07", "F6"},
                                {"A07", "F7"}, {"A07", "F8"}, {"A07", "F9"}});

  auto a10 = bench.same_dataset("A10", "F1");
  std::printf("%-42s %-12s precision %.3f\n",
              "A10 smartdet on F1 (CICIDS2017 DoS)", "prec 0.99",
              a10.ok() ? a10.value().record.precision : -1.0);

  double a14_sum = 0.0;
  int a14_n = 0;
  for (const char* ds : {"F4", "F5", "F6", "F7", "F8", "F9"}) {
    auto r = bench.same_dataset("A14", ds);
    if (r.ok()) {
      a14_sum += r.value().record.precision;
      ++a14_n;
    }
  }
  std::printf("%-42s %-12s mean precision %.3f\n",
              "A14 Zeek on F4-F9 (CTU-IoT)", "prec 0.999",
              a14_n > 0 ? a14_sum / a14_n : -1.0);

  double a07_sum = 0.0;
  int a07_n = 0;
  for (const char* ds : {"F0", "F1", "F2"}) {
    auto r = bench.same_dataset("A07", ds);
    if (r.ok()) {
      a07_sum += r.value().record.auc;
      ++a07_n;
    }
  }
  std::printf("%-42s %-12s AUC %.3f\n", "A07 OCSVM on F0-F2 (CICIDS2017)",
              "AUC 0.786", a07_n > 0 ? a07_sum / a07_n : -1.0);

  double a07c_sum = 0.0;
  int a07c_n = 0;
  for (const char* ds : {"F4", "F5", "F6", "F7", "F8", "F9"}) {
    auto r = bench.same_dataset("A07", ds);
    if (r.ok()) {
      a07c_sum += r.value().record.auc;
      ++a07c_n;
    }
  }
  std::printf("%-42s %-12s AUC %.3f\n", "A07 OCSVM on F4-F9 (CTU-IoT)",
              "AUC 0.75", a07c_n > 0 ? a07c_sum / a07c_n : -1.0);

  std::printf(
      "\nAs in the paper, supervised pipelines land close to the reported\n"
      "numbers while the unsupervised OCSVM family varies with data and\n"
      "hyperparameters (the paper reports the same gap: 0.66 vs 0.786 and\n"
      "0.492 vs 0.75 on its real datasets).\n");
  return (m1 == 0 && m2 == 0 && m3 == 0) ? 0 : 1;
}
