// Figure 5: per-(algorithm, attack) precision heatmap. A cell averages the
// algorithm's precision against one attack family over every faithful
// dataset containing that attack; gray cells mean no faithful dataset
// carries the attack. Prints Observation 4.
#include <map>

#include "fig_common.h"

int main() {
  using namespace lumen;
  bench::print_header("Figure 5: which algorithm detects which attack");

  eval::ResultStore store;
  // (algo, attack) -> precision samples across datasets.
  std::map<std::pair<std::string, uint8_t>, std::vector<double>> cells;
  std::set<uint8_t> attacks_seen;

  const std::vector<std::string> algos = bench::all_algorithms();
  bench::sweep_same_dataset(algos, store,
                            [&](const bench::Benchmark::RunOutput& run) {
    for (const eval::AttackScore& s :
         bench::shared_benchmark().per_attack(run)) {
      const uint8_t a = static_cast<uint8_t>(s.attack);
      cells[{run.record.algo, a}].push_back(s.precision);
      attacks_seen.insert(a);
    }
  });

  std::vector<std::string> attack_names;
  std::vector<uint8_t> attack_ids(attacks_seen.begin(), attacks_seen.end());
  for (uint8_t a : attack_ids) {
    attack_names.push_back(
        trace::attack_name(static_cast<trace::AttackType>(a)));
  }
  eval::Heatmap heat =
      eval::Heatmap::make("Fig. 5: precision per algorithm x attack "
                          "(gray = no faithful dataset with that attack)",
                          algos, attack_names);
  for (size_t r = 0; r < algos.size(); ++r) {
    for (size_t c = 0; c < attack_ids.size(); ++c) {
      auto it = cells.find({algos[r], attack_ids[c]});
      if (it == cells.end()) continue;
      double sum = 0.0;
      for (double v : it->second) sum += v;
      heat.at(r, c) = sum / static_cast<double>(it->second.size());
    }
  }
  std::printf("%s\n", heat.render().c_str());
  bench::write_artifact("fig5_attack_heatmap.csv", heat.to_csv());
  auto saved = store.save_csv("results/fig5_runs.csv");
  (void)saved;

  // Observation 4 shape checks.
  size_t specialists = 0;
  for (size_t r = 0; r < algos.size(); ++r) {
    double best = -1.0, worst = 2.0;
    for (size_t c = 0; c < attack_ids.size(); ++c) {
      const double v = heat.at(r, c);
      if (std::isnan(v)) continue;
      best = std::max(best, v);
      worst = std::min(worst, v);
    }
    if (best >= 0.0 && best - worst > 0.3) ++specialists;
  }
  std::printf(
      "Observation 4: the precision of a given algorithm is highly affected\n"
      "by the attack: %zu/%zu algorithms span a > 0.3 precision range across\n"
      "attack families.\n",
      specialists, algos.size());

  // AWID3 callout: only A06 can run there, with limited precision.
  double awid_best = -1.0;
  for (size_t c = 0; c < attack_ids.size(); ++c) {
    const auto a = static_cast<trace::AttackType>(attack_ids[c]);
    if (a == trace::AttackType::kDot11Deauth ||
        a == trace::AttackType::kDot11EvilTwin) {
      for (size_t r = 0; r < algos.size(); ++r) {
        if (!std::isnan(heat.at(r, c))) {
          awid_best = std::max(awid_best, heat.at(r, c));
        }
      }
    }
  }
  std::printf(
      "802.11 attacks (AWID3): only Kitsune can run (no IP headers); best\n"
      "precision there is %.2f.\n",
      awid_best);
  return 0;
}
