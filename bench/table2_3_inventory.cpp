// Tables 2 & 3: the algorithms implemented in Lumen and the datasets of the
// benchmarking suite, plus the operation catalogue backing the templates.
#include "fig_common.h"

#include "core/op.h"

int main() {
  using namespace lumen;
  bench::print_header("Tables 2 & 3: algorithm and dataset inventory");

  std::printf("-- Table 2: algorithms --\n");
  std::printf("%-5s %-38s %-11s %s\n", "ID", "Description", "Granularity",
              "Source");
  for (const core::AlgorithmDef& a : core::algorithm_registry()) {
    std::printf("%-5s %-38.38s %-11s %s\n", a.id.c_str(), a.label.c_str(),
                trace::granularity_name(a.granularity), a.paper.c_str());
  }

  std::printf("\n-- Table 3: datasets --\n");
  std::printf("%-4s %-30s %-11s %s\n", "ID", "Stand-in for", "Granularity",
              "Attacks");
  for (const auto& d : trace::dataset_inventory()) {
    std::printf("%-4s %-30.30s %-11s %s\n", d.id.c_str(), d.standin.c_str(),
                trace::granularity_name(d.granularity),
                d.attack_summary.c_str());
  }

  core::register_builtin_operations();
  const auto ops = core::OperationRegistry::instance().known_ops();
  std::printf("\n-- Operation catalogue (%zu configurable operations) --\n",
              ops.size());
  for (const std::string& op : ops) std::printf("  %s\n", op.c_str());

  std::printf("\n-- Generated dataset sizes (scale=0.5) --\n");
  std::printf("%-4s %9s %9s %8s %s\n", "ID", "packets", "malicious", "share",
              "attack families");
  for (const std::string& id : trace::all_dataset_ids()) {
    const trace::Dataset& ds = bench::shared_benchmark().dataset(id);
    std::string attacks;
    for (trace::AttackType a : ds.attack_types()) {
      if (!attacks.empty()) attacks += ", ";
      attacks += trace::attack_name(a);
    }
    std::printf("%-4s %9zu %9zu %7.1f%% %s\n", id.c_str(), ds.packets(),
                ds.malicious_packets(),
                100.0 * static_cast<double>(ds.malicious_packets()) /
                    static_cast<double>(ds.packets()),
                attacks.c_str());
  }
  return 0;
}
