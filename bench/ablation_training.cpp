// Training-setup ablation, quantifying the paper's "unclear hyperparameters"
// pain point (§4.2): the same algorithm's scores move substantially with
// (i) the train/test split fraction, (ii) the anomaly-threshold quantile of
// unsupervised detectors, and (iii) hyperparameter tuning via grid search.
#include "fig_common.h"

#include "ml/kitnet.h"
#include "ml/forest.h"
#include "ml/tuning.h"

int main() {
  using namespace lumen;
  bench::print_header("Training-setup ablation (the hyperparameter problem)");

  bench::Benchmark& bench = bench::shared_benchmark();

  // ---- (i) train fraction sweep for a supervised pipeline.
  std::printf("-- A14 (Zeek+RF) on F4: train fraction sweep --\n");
  std::printf("%-10s %10s %10s\n", "fraction", "precision", "recall");
  auto feats = bench.features("A14", "F4");
  if (feats.ok()) {
    for (double frac : {0.3, 0.5, 0.7, 0.9}) {
      auto [train, test] = eval::Benchmark::split_by_time(*feats.value(), frac);
      ml::RandomForest rf;
      rf.fit(train);
      const auto c = ml::confusion(test.labels, rf.predict(test));
      std::printf("%-10.1f %10.3f %10.3f\n", frac, ml::precision(c),
                  ml::recall(c));
    }
  }

  // ---- (ii) threshold-quantile sweep for Kitsune.
  std::printf("\n-- A06 (Kitsune) on P1: anomaly-threshold quantile sweep --\n");
  std::printf("%-10s %10s %10s\n", "quantile", "precision", "recall");
  auto kfeats = bench.features("A06", "P1");
  if (kfeats.ok()) {
    auto [train, test] = eval::Benchmark::split_by_time(*kfeats.value(), 0.7);
    for (double q : {0.90, 0.95, 0.97, 0.99, 0.995}) {
      ml::KitNet::Config cfg;
      cfg.quantile = q;
      ml::KitNet kn(cfg);
      kn.fit(train);
      const auto c = ml::confusion(test.labels, kn.predict(test));
      std::printf("%-10.3f %10.3f %10.3f\n", q, ml::precision(c),
                  ml::recall(c));
    }
  }

  // ---- (iii) grid-search tuning of the forest on a harder dataset.
  std::printf("\n-- A14 model family on F5 (Torii): k-fold grid search --\n");
  auto tfeats = bench.features("A14", "F5");
  if (tfeats.ok()) {
    auto [train, test] = eval::Benchmark::split_by_time(*tfeats.value(), 0.7);
    ml::ParamGrid grid;
    grid.axes["n_trees"] = {5.0, 20.0, 40.0};
    grid.axes["max_depth"] = {4.0, 8.0, 14.0};
    const ml::TuneResult tuned = ml::grid_search(
        [](const ml::ParamPoint& p) -> ml::ModelPtr {
          ml::ForestConfig cfg;
          cfg.n_trees = static_cast<size_t>(p.at("n_trees"));
          cfg.max_depth = static_cast<int>(p.at("max_depth"));
          return std::make_shared<ml::RandomForest>(cfg);
        },
        train, grid, 3);
    std::printf("%-22s %12s %10s\n", "params", "cv f1", "+/-");
    for (const ml::Trial& t : tuned.trials) {
      std::printf("trees=%-4.0f depth=%-8.0f %12.3f %10.3f\n",
                  t.params.at("n_trees"), t.params.at("max_depth"),
                  t.mean_score, t.std_score);
    }
    // Test-set comparison: default vs tuned.
    ml::RandomForest dflt;
    dflt.fit(train);
    ml::ForestConfig best;
    best.n_trees = static_cast<size_t>(tuned.best.params.at("n_trees"));
    best.max_depth = static_cast<int>(tuned.best.params.at("max_depth"));
    ml::RandomForest tuned_rf(best);
    tuned_rf.fit(train);
    const auto cd = ml::confusion(test.labels, dflt.predict(test));
    const auto ct = ml::confusion(test.labels, tuned_rf.predict(test));
    std::printf("\ntest F1: default config %.3f, tuned config %.3f\n",
                ml::f1(cd), ml::f1(ct));
  }

  std::printf(
      "\nTakeaway: every knob above shifts scores by tens of points — why\n"
      "the paper insists hyperparameters must be part of a benchmark's\n"
      "specification, and why Lumen pins them in the algorithm registry.\n");
  return 0;
}
