// Figure 6: improving the state of the art with Lumen — merged-dataset
// training for existing connection-level algorithms (A08, A09, A13, A14)
// and the Lumen-synthesized module recombinations (AM01-AM03). Prints
// Observation 5 with the measured improvement over the Fig. 5 baselines.
#include <map>
#include <optional>

#include "common/parallel.h"
#include "fig_common.h"

int main() {
  using namespace lumen;
  bench::print_header(
      "Figure 6: merged-dataset training + synthesized algorithms");

  bench::Benchmark& bench = bench::shared_benchmark();

  // ---- Baseline: connection-level per-attack precision from the Fig. 5
  // protocol (same-dataset runs averaged per attack).
  const std::vector<std::string> base_algos = {"A08", "A09", "A13", "A14"};
  std::map<std::string, std::vector<double>> base_overall;
  std::map<std::pair<std::string, uint8_t>, std::vector<double>> base_cells;
  std::set<uint8_t> attacks_seen;
  eval::ResultStore base_store;
  bench::sweep_same_dataset(base_algos, base_store,
                            [&](const bench::Benchmark::RunOutput& run) {
    base_overall[run.record.algo].push_back(run.record.precision);
    for (const eval::AttackScore& s : bench.per_attack(run)) {
      base_cells[{run.record.algo, static_cast<uint8_t>(s.attack)}].push_back(
          s.precision);
      attacks_seen.insert(static_cast<uint8_t>(s.attack));
    }
  });

  // ---- Improved: merged 10% training for the same algorithms, plus the
  // synthesized AM01-AM03 under the same merged protocol.
  std::vector<std::string> improved = base_algos;
  for (const std::string& am : core::synthesized_algorithm_ids()) {
    improved.push_back(am);
  }
  std::map<std::string, double> merged_precision;
  std::map<std::pair<std::string, uint8_t>, double> merged_cells;
  // Merged-training runs are independent per algorithm: evaluate across the
  // pool into an index-addressed buffer, then merge serially in list order.
  std::vector<std::optional<lumen::Result<bench::Benchmark::RunOutput>>>
      merged_runs(improved.size());
  lumen::parallel_for(
      0, improved.size(),
      [&](size_t i) { merged_runs[i].emplace(bench.merged_training(improved[i], 0.10)); },
      /*min_parallel=*/2);
  for (size_t i = 0; i < improved.size(); ++i) {
    const std::string& algo = improved[i];
    auto& run = *merged_runs[i];
    if (!run.ok()) {
      std::fprintf(stderr, "[skip] %s merged: %s\n", algo.c_str(),
                   run.error().message.c_str());
      continue;
    }
    merged_precision[algo] = run.value().record.precision;
    for (const eval::AttackScore& s : bench.per_attack(run.value())) {
      merged_cells[{algo, static_cast<uint8_t>(s.attack)}] = s.precision;
      attacks_seen.insert(static_cast<uint8_t>(s.attack));
    }
  }

  // ---- Render the Fig. 6 heatmap: improved rows over attack columns.
  std::vector<uint8_t> attack_ids(attacks_seen.begin(), attacks_seen.end());
  std::vector<std::string> attack_names;
  for (uint8_t a : attack_ids) {
    attack_names.push_back(
        trace::attack_name(static_cast<trace::AttackType>(a)));
  }
  std::vector<std::string> rows;
  for (const std::string& a : improved) rows.push_back(a + "+m");
  eval::Heatmap heat = eval::Heatmap::make(
      "Fig. 6: per-attack precision with merged training (+m) and "
      "Lumen-synthesized AM rows",
      rows, attack_names);
  for (size_t r = 0; r < improved.size(); ++r) {
    for (size_t c = 0; c < attack_ids.size(); ++c) {
      auto it = merged_cells.find({improved[r], attack_ids[c]});
      if (it != merged_cells.end()) heat.at(r, c) = it->second;
    }
  }
  std::printf("%s\n", heat.render().c_str());
  bench::write_artifact("fig6_improved_heatmap.csv", heat.to_csv());

  // ---- Observation 5: quantify the improvements.
  std::printf("-- merged-dataset training vs per-dataset baseline --\n");
  std::printf("%-6s %10s %10s %8s\n", "algo", "baseline", "merged", "delta");
  double base_mean_sum = 0.0, best_delta = 0.0;
  size_t base_n = 0;
  for (const std::string& a : base_algos) {
    double base = 0.0;
    for (double v : base_overall[a]) base += v;
    if (!base_overall[a].empty()) {
      base /= static_cast<double>(base_overall[a].size());
    }
    base_mean_sum += base;
    ++base_n;
    const double delta = merged_precision[a] - base;
    best_delta = std::max(best_delta, delta);
    std::printf("%-6s %10.3f %10.3f %+8.3f\n", a.c_str(), base,
                merged_precision.count(a) != 0 ? merged_precision[a] : 0.0,
                delta);
  }
  double am_best = 0.0;
  std::string am_best_id;
  for (const std::string& a : core::synthesized_algorithm_ids()) {
    if (merged_precision.count(a) != 0 && merged_precision[a] > am_best) {
      am_best = merged_precision[a];
      am_best_id = a;
    }
    std::printf("%-6s %10s %10.3f\n", a.c_str(), "-", merged_precision[a]);
  }
  const double base_mean = base_n > 0 ? base_mean_sum / static_cast<double>(base_n) : 0.0;
  std::printf(
      "\nObservation 5: merged-dataset training improves individual\n"
      "algorithms by up to %+.1f precision points (paper: 12-27 points),\n"
      "and the best Lumen-synthesized algorithm %s reaches %.3f average\n"
      "precision vs %.3f for the average prior baseline (%+.1f points;\n"
      "paper: +4 points over the best prior work).\n",
      100.0 * best_delta, am_best_id.c_str(), am_best, base_mean,
      100.0 * (am_best - base_mean));
  return 0;
}
