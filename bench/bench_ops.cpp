// google-benchmark microbenchmarks for the framework operations — the
// counterpart of the execution engine's per-op time/memory profile (§3.2).
#include <benchmark/benchmark.h>

#include "core/algorithms.h"
#include "netio/parse.h"
#include "trace/registry.h"

namespace {

using namespace lumen;

const trace::Dataset& dataset() {
  static const trace::Dataset ds = trace::make_dataset("P1", 0.5);
  return ds;
}

core::Value packets() {
  core::PacketSet ps;
  ps.dataset = &dataset();
  for (uint32_t i = 0; i < dataset().trace.view.size(); ++i) {
    ps.idx.push_back(i);
  }
  return core::Value(std::move(ps));
}

void run_single_op(benchmark::State& state, const std::string& func,
                   const std::string& params_json,
                   const std::vector<const core::Value*>& inputs) {
  core::register_builtin_operations();
  core::OpSpec spec;
  spec.func = func;
  spec.output = "out";
  spec.params = core::Json::parse(params_json).value();
  core::OpContext ctx;
  ctx.dataset = &dataset();
  auto op = core::OperationRegistry::instance().create(spec);
  for (auto _ : state) {
    auto out = op.value()->run(inputs, ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset().trace.view.size()));
}

void BM_ParseTrace(benchmark::State& state) {
  trace::Dataset ds = trace::make_dataset("P1", 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netio::parse_trace(ds.trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.trace.raw.size()));
}
BENCHMARK(BM_ParseTrace);

void BM_OpGroupby(benchmark::State& state) {
  const core::Value src = packets();
  run_single_op(state, "groupby", R"({"flowid": ["srcip"]})", {&src});
}
BENCHMARK(BM_OpGroupby);

void BM_OpPacketFeatures(benchmark::State& state) {
  const core::Value src = packets();
  run_single_op(state, "packet_features",
                R"({"param": ["len", "iat", "dport", "proto"]})", {&src});
}
BENCHMARK(BM_OpPacketFeatures);

void BM_OpDampedStats(benchmark::State& state) {
  const core::Value src = packets();
  run_single_op(state, "damped_stats", R"({"lambdas": [5, 3, 1, 0.1, 0.01]})",
                {&src});
}
BENCHMARK(BM_OpDampedStats);

void BM_OpNprint(benchmark::State& state) {
  const core::Value src = packets();
  run_single_op(state, "nprint", R"({"layers": ["ipv4", "tcp", "udp"]})",
                {&src});
}
BENCHMARK(BM_OpNprint);

void BM_OpConnections(benchmark::State& state) {
  const core::Value src = packets();
  run_single_op(state, "connections", "{}", {&src});
}
BENCHMARK(BM_OpConnections);

void BM_OpWindowStats(benchmark::State& state) {
  const core::Value src = packets();
  run_single_op(state, "window_stats",
                R"({"key": "srcip", "window": 10,
                    "list": [{"field": "len", "funcs": ["mean", "std"]},
                             {"func": "count"}]})",
                {&src});
}
BENCHMARK(BM_OpWindowStats);

void BM_FullKitsunePipeline(benchmark::State& state) {
  const core::AlgorithmDef* algo = core::find_algorithm("A06");
  for (auto _ : state) {
    auto feats = core::compute_features(*algo, dataset());
    benchmark::DoNotOptimize(feats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dataset().trace.view.size()));
}
BENCHMARK(BM_FullKitsunePipeline);

void BM_EngineTypeCheck(benchmark::State& state) {
  const core::AlgorithmDef* algo = core::find_algorithm("A06");
  auto spec = core::PipelineSpec::parse(algo->feature_template);
  core::Engine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.type_check(spec.value()));
  }
}
BENCHMARK(BM_EngineTypeCheck);

void BM_DatasetGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::make_dataset("F4", 0.5));
  }
}
BENCHMARK(BM_DatasetGeneration);

}  // namespace

BENCHMARK_MAIN();
