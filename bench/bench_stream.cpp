// Streaming operator engine benchmark: per-operator cost of a compiled
// chain (marginal ns/pkt via prefix-chain subtraction), plus the headline
// comparison the check_bench gate enforces — a compiled per-packet chain
// (field_extract -> damped_stats -> predict) must stay within 1.3x of the
// bare KitsuneScorer path (OnlineKitsune::score_packets) on the same
// stream. The chain does the same extraction and model math through the
// generic operator plumbing (tuples, FeatureTable staging, epoch batches),
// so the ratio is the abstraction tax of running compiled specs live.
// Emits BENCH_stream.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/telemetry.h"
#include "core/engine.h"
#include "core/stream.h"
#include "core/stream_op.h"
#include "netio/parse.h"
#include "trace/registry.h"

namespace {

using Clock = std::chrono::steady_clock;
using lumen::core::compile_streaming;
using lumen::core::PipelineSpec;
using lumen::core::StreamingOptions;
using lumen::core::StreamPipeline;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr int kReps = 5;           // best-of repetitions per timed section
constexpr int kStreamRepeats = 4;  // stream = streamed region x repeats

PipelineSpec parse_spec(const std::string& body) {
  auto spec = PipelineSpec::parse("[" + body + "]");
  if (!spec.ok()) {
    std::fprintf(stderr, "spec parse: %s\n", spec.error().message.c_str());
    std::exit(1);
  }
  return std::move(spec).value();
}

lumen::trace::Dataset slice_prefix(const lumen::trace::Dataset& ds,
                                   size_t end) {
  lumen::trace::Dataset out;
  out.id = ds.id + "-train";
  out.label_granularity = ds.label_granularity;
  out.trace.link = ds.trace.link;
  for (size_t j = 0; j < end; ++j) {
    out.trace.raw.push_back(ds.trace.raw[j]);
    out.pkt_label.push_back(ds.label_at(j));
    out.pkt_attack.push_back(ds.attack_at(j));
  }
  lumen::netio::parse_trace(out.trace);
  return out;
}

/// Best-of-kReps wall time for pushing the whole stream through `chain`.
double time_chain(StreamPipeline& chain,
                  const std::vector<lumen::netio::PacketView>& views) {
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    chain.reset();
    const Clock::time_point t0 = Clock::now();
    for (const auto& v : views) chain.push(v);
    chain.finish();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

}  // namespace

int main() {
  using namespace lumen;
  std::printf("bench_stream: streaming operator engine\n\n");

  const trace::Dataset ds = trace::make_dataset("P1", 1.0);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const trace::Dataset train = slice_prefix(ds, grace);

  // Steady-state stream: the streamed region repeated with shifted
  // timestamps (one pass is ~10 ms of work; fixed costs would drown it).
  netio::Trace big;
  big.link = ds.trace.link;
  const double span = ds.trace.raw.back().ts - ds.trace.raw[grace].ts + 0.001;
  for (int rep = 0; rep < kStreamRepeats; ++rep) {
    for (size_t i = grace; i < ds.trace.raw.size(); ++i) {
      netio::RawPacket p = ds.trace.raw[i];
      p.ts += rep * span;
      big.raw.push_back(std::move(p));
    }
  }
  netio::parse_trace(big);
  const double npkt = static_cast<double>(big.view.size());
  std::printf("stream: streamed region x%d = %zu packets\n\n", kStreamRepeats,
              big.view.size());

  core::Engine::Options eopts;
  eopts.registry = nullptr;
  core::OpContext tctx;
  tctx.dataset = &train;

  // ---- per-operator breakdown over the windowed chain -------------------
  // Chains must end in a row-producing operator to compile, so each rung of
  // the ladder keeps the apply_aggregates tail and adds one operator; the
  // added operator's cost is the difference between consecutive rungs. The
  // first rung (extract + groupby + aggregate) is the floor a grouped chain
  // cannot go below.
  const double window = span / 8.0;
  const std::string extract =
      R"({"func": "field_extract", "input": None, "output": "P",
          "param": ["srcIP", "packetLength"]},)";
  const std::string filter =
      R"({"func": "filter", "input": ["P"], "output": "PF",
          "require": ["len"]},)";
  const auto groupby = [](const char* in) {
    return std::string(R"({"func": "groupby", "input": [")") + in +
           R"("], "output": "G", "flowid": ["srcmac"]},)";
  };
  const std::string time_slice =
      R"({"func": "time_slice", "input": ["G"], "output": "W", "window": )" +
      std::to_string(window) + R"(, "align": "global"},)";
  const auto aggregate = [](const char* in) {
    return std::string(R"({"func": "apply_aggregates", "input": [")") + in +
           R"("], "output": "F"},)";
  };
  const std::string normalize =
      R"({"func": "normalize", "input": ["F"], "output": "N",
          "kind": "minmax"},)";
  const std::string predict =
      R"({"func": "predict", "input": ["Model", "N"], "output": "Preds"},)";
  const std::vector<std::pair<const char*, std::string>> ladder = {
      {"extract+groupby+aggregate", extract + groupby("P") + aggregate("G")},
      {"filter", extract + filter + groupby("PF") + aggregate("G")},
      {"time_slice",
       extract + filter + groupby("PF") + time_slice + aggregate("W")},
      {"normalize",
       extract + filter + groupby("PF") + time_slice + aggregate("W") +
           normalize},
      {"predict",
       extract + filter + groupby("PF") + time_slice + aggregate("W") +
           normalize + predict}};

  // Train the windowed model once (batch engine, the only trainer).
  core::ModelValue windowed_model;
  {
    const std::string body =
        extract + filter + groupby("PF") + time_slice + aggregate("W") +
        normalize +
        R"({"func": "model", "input": None, "output": "M0",
            "model_type": "KitNET", "normalize": true},
           {"func": "train", "input": ["M0", "N"], "output": "Model"},)";
    auto report = core::Engine(eopts).run(parse_spec(body), tctx);
    if (!report.ok()) {
      std::fprintf(stderr, "train windowed: %s\n",
                   report.error().message.c_str());
      return 1;
    }
    windowed_model = *report.value().get<core::ModelValue>("Model");
  }

  struct OpCost {
    const char* op = nullptr;
    double ns = 0.0;
  };
  std::vector<OpCost> op_costs;
  double windowed_chain_ns = 0.0;
  {
    std::printf("per-operator marginal cost (ladder subtraction):\n");
    double prev_s = 0.0;
    for (size_t i = 0; i < ladder.size(); ++i) {
      const auto& [op, body] = ladder[i];
      StreamingOptions sopts;
      sopts.bindings.emplace("Model", windowed_model);
      auto chain = compile_streaming(parse_spec(body), std::move(sopts));
      if (!chain.ok()) {
        std::fprintf(stderr, "compile %s: %s\n", op,
                     chain.error().message.c_str());
        return 1;
      }
      const double s = time_chain(*chain.value(), big.view);
      // Rung 0 is a floor, not a marginal: report its full cost.
      const double marginal_ns =
          i == 0 ? s / npkt * 1e9 : std::max(0.0, (s - prev_s) / npkt * 1e9);
      op_costs.push_back(OpCost{op, marginal_ns});
      std::printf("  %-26s %8.1f ns/pkt\n", op, marginal_ns);
      prev_s = s;
      windowed_chain_ns = s / npkt * 1e9;
    }
    std::printf("  full windowed chain: %.1f ns/pkt\n\n", windowed_chain_ns);
  }

  // ---- chain vs bare scorer (the gate) ----------------------------------
  // Bare path: OnlineKitsune trained on the grace region, scored through
  // the fused micro-batch entry point in batches of 64.
  core::OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});
  double scorer_ns = 0.0;
  {
    double best = 1e30;
    std::vector<double> scores(64, 0.0);
    for (int rep = 0; rep < kReps; ++rep) {
      core::OnlineKitsune det = proto;
      const Clock::time_point t0 = Clock::now();
      for (size_t lo = 0; lo < big.view.size(); lo += 64) {
        const size_t n = std::min<size_t>(64, big.view.size() - lo);
        det.score_packets({big.view.data() + lo, n}, scores.data());
      }
      best = std::min(best, seconds_since(t0));
    }
    scorer_ns = best / npkt * 1e9;
  }

  // Chain path: the same per-packet feature math (damped_stats IS the
  // Kitsune extractor) as a compiled spec, model seeded from a batch train.
  double chain_ns = 0.0;
  uint64_t chain_alerts = 0;
  {
    const std::string extract =
        R"({"func": "field_extract", "input": None, "output": "P",
            "param": []},
           {"func": "damped_stats", "input": ["P"], "output": "F"},)";
    auto trained = core::Engine(eopts).run(
        parse_spec(extract +
                   R"({"func": "model", "input": None, "output": "M0",
                       "model_type": "KitNET", "normalize": true},
                      {"func": "train", "input": ["M0", "F"],
                       "output": "Model"},)"),
        tctx);
    if (!trained.ok()) {
      std::fprintf(stderr, "train per-packet: %s\n",
                   trained.error().message.c_str());
      return 1;
    }
    StreamingOptions sopts;
    sopts.bindings.emplace("Model",
                           *trained.value().get<core::ModelValue>("Model"));
    auto chain = compile_streaming(
        parse_spec(extract + R"({"func": "predict", "input": ["Model", "F"],
                                 "output": "Preds"},)"),
        std::move(sopts));
    if (!chain.ok()) {
      std::fprintf(stderr, "compile per-packet: %s\n",
                   chain.error().message.c_str());
      return 1;
    }
    chain_ns = time_chain(*chain.value(), big.view) / npkt * 1e9;
    chain_alerts = chain.value()->alerts();
  }
  const double ratio = scorer_ns > 0.0 ? chain_ns / scorer_ns : 0.0;
  std::printf("bare KitsuneScorer path: %.1f ns/pkt\n", scorer_ns);
  std::printf("compiled chain path:     %.1f ns/pkt (%.2fx, %llu alerts)\n\n",
              chain_ns, ratio,
              static_cast<unsigned long long>(chain_alerts));

  telemetry::json::Writer w;
  w.kv_str("benchmark", "stream_engine");
  w.kv_str("capture", "P1");
  w.kv_u64("packets", big.view.size());
  w.kv_i64("stream_repeats", kStreamRepeats);
  w.kv_i64("reps", kReps);
  w.begin_array("ops");
  for (const OpCost& c : op_costs) {
    w.begin_inline_object();
    w.kv_str("op", c.op);
    w.kv_f("marginal_ns_per_pkt", c.ns, 1);
    w.end();
  }
  w.end();
  w.kv_f("windowed_chain_ns_per_pkt", windowed_chain_ns, 1);
  w.begin_inline_object("per_packet");
  w.kv_f("scorer_ns_per_pkt", scorer_ns, 1);
  w.kv_f("chain_ns_per_pkt", chain_ns, 1);
  w.kv_f("chain_vs_scorer", ratio, 3);
  w.kv_u64("chain_alerts", chain_alerts);
  w.end();
  if (std::FILE* f = std::fopen("BENCH_stream.json", "w")) {
    const std::string doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("[artifact] BENCH_stream.json\n");
  }
  return 0;
}
