// Dataset generator tests: determinism, label alignment, attack content,
// per-dataset invariants (parameterized over all 15 registry entries), and
// targeted behaviour checks for individual attack emitters.
#include <gtest/gtest.h>

#include <set>

#include "flow/flow.h"
#include "trace/attacks.h"
#include "trace/registry.h"

namespace lumen::trace {
namespace {

constexpr double kScale = 0.25;  // fast generation for tests

class DatasetInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetInvariants, WellFormed) {
  const Dataset ds = make_dataset(GetParam(), kScale);
  EXPECT_EQ(ds.id, GetParam());
  ASSERT_GT(ds.packets(), 100u) << "dataset too small to be useful";
  // Labels and attack tags are aligned with parsed packets.
  ASSERT_EQ(ds.pkt_label.size(), ds.trace.view.size());
  ASSERT_EQ(ds.pkt_attack.size(), ds.trace.view.size());
  ASSERT_EQ(ds.trace.raw.size(), ds.trace.view.size());
  // Mixed labels: both benign and malicious traffic present.
  const size_t mal = ds.malicious_packets();
  EXPECT_GT(mal, 0u);
  EXPECT_LT(mal, ds.packets());
  // Malicious packets carry an attack tag; benign never do.
  for (size_t i = 0; i < ds.packets(); ++i) {
    if (ds.pkt_label[i] != 0) {
      EXPECT_NE(ds.pkt_attack[i], 0) << "packet " << i;
    } else {
      EXPECT_EQ(ds.pkt_attack[i], 0) << "packet " << i;
    }
  }
  // Timestamps are sorted.
  for (size_t i = 1; i < ds.packets(); ++i) {
    EXPECT_LE(ds.trace.raw[i - 1].ts, ds.trace.raw[i].ts);
  }
  EXPECT_FALSE(ds.attack_types().empty());
}

TEST_P(DatasetInvariants, DeterministicGeneration) {
  const Dataset a = make_dataset(GetParam(), kScale);
  const Dataset b = make_dataset(GetParam(), kScale);
  ASSERT_EQ(a.packets(), b.packets());
  for (size_t i = 0; i < a.packets(); ++i) {
    ASSERT_EQ(a.trace.raw[i].data, b.trace.raw[i].data) << "packet " << i;
    ASSERT_EQ(a.pkt_label[i], b.pkt_label[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetInvariants,
                         ::testing::ValuesIn(all_dataset_ids()),
                         [](const auto& info) { return info.param; });

TEST(Registry, InventoryMatchesPaper) {
  EXPECT_EQ(all_dataset_ids().size(), 15u);
  EXPECT_EQ(connection_dataset_ids().size(), 10u);
  EXPECT_EQ(packet_dataset_ids().size(), 5u);
  for (const auto& info : dataset_inventory()) {
    EXPECT_FALSE(info.standin.empty());
    EXPECT_FALSE(info.attack_summary.empty());
  }
}

TEST(Registry, CacheReturnsSameObject) {
  const Dataset& a = dataset_cache("F5");
  const Dataset& b = dataset_cache("F5");
  EXPECT_EQ(&a, &b);
}

TEST(Datasets, GranularitiesMatchInventory) {
  for (const auto& info : dataset_inventory()) {
    const Dataset ds = make_dataset(info.id, kScale);
    EXPECT_EQ(ds.label_granularity, info.granularity) << info.id;
  }
}

TEST(Datasets, Awid3IsDot11OnlyAndOthersAreNot) {
  const Dataset p2 = make_dataset("P2", kScale);
  EXPECT_TRUE(p2.is_dot11());
  for (const auto& v : p2.trace.view) EXPECT_FALSE(v.has_ip);
  const Dataset f0 = make_dataset("F0", kScale);
  EXPECT_FALSE(f0.is_dot11());
}

TEST(Datasets, OnlyP0CarriesAppMetadata) {
  for (const std::string& id : all_dataset_ids()) {
    const Dataset ds = make_dataset(id, kScale);
    EXPECT_EQ(ds.has_app_metadata, id == "P0") << id;
  }
}

TEST(Datasets, ExpectedAttackFamilies) {
  const auto has = [](const Dataset& ds, AttackType a) {
    return ds.attack_types().count(a) != 0;
  };
  EXPECT_TRUE(has(make_dataset("F0", kScale), AttackType::kBruteForce));
  const Dataset f1 = make_dataset("F1", kScale);
  EXPECT_TRUE(has(f1, AttackType::kDosHulk));
  EXPECT_TRUE(has(f1, AttackType::kDosSlowloris));
  EXPECT_TRUE(has(f1, AttackType::kHeartbleed));
  EXPECT_TRUE(has(make_dataset("F3", kScale), AttackType::kDdosReflection));
  EXPECT_TRUE(has(make_dataset("F5", kScale), AttackType::kToriiC2));
  const Dataset p2 = make_dataset("P2", kScale);
  EXPECT_TRUE(has(p2, AttackType::kDot11Deauth));
  EXPECT_TRUE(has(p2, AttackType::kDot11EvilTwin));
}

TEST(Datasets, TousledConnectionLabelsArePure) {
  // Connection-labeled datasets must yield label-pure connections, or the
  // granularity is a lie (cf. §2.1's discussion of label modification).
  for (const std::string& id : connection_dataset_ids()) {
    const Dataset ds = make_dataset(id, kScale);
    const auto conns = flow::assemble_connections(ds.trace);
    size_t impure = 0;
    for (const auto& c : conns) {
      size_t mal = 0;
      for (uint32_t p : c.pkts) mal += ds.pkt_label[p];
      if (mal != 0 && mal != c.pkts.size()) ++impure;
    }
    // Allow a tiny residue from timeout-split edge cases.
    EXPECT_LE(impure, conns.size() / 50) << id;
  }
}

TEST(Datasets, ScaleShrinksCaptures) {
  const Dataset small = make_dataset("F4", 0.2);
  const Dataset big = make_dataset("F4", 1.0);
  EXPECT_LT(small.packets(), big.packets());
}

TEST(Attacks, ToriiIsStealthy) {
  // Torii volume must be a small fraction of the F5 capture (cross-dataset
  // models never see anything like it).
  const Dataset f5 = make_dataset("F5", 1.0);
  const double frac = static_cast<double>(f5.malicious_packets()) /
                      static_cast<double>(f5.packets());
  EXPECT_LT(frac, 0.25);
  EXPECT_GT(frac, 0.01);
}

TEST(Attacks, SynFloodIsSynHeavy) {
  Sim sim(1);
  attack_syn_flood(sim, 0.0, 10.0, 0x0a000005, 80, 20.0,
                   AttackType::kSynFlood);
  Dataset ds = sim.finish("X", "synthetic", Granularity::kPacket);
  size_t syn = 0, total = 0;
  for (const auto& v : ds.trace.view) {
    if (v.has_tcp()) {
      ++total;
      syn += v.tcp_flag(netio::kSyn) && !v.tcp_flag(netio::kAck);
    }
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(syn) / static_cast<double>(total), 0.7);
}

TEST(Attacks, PortScanTouchesManyPorts) {
  Sim sim(2);
  attack_port_scan(sim, 0.0, 20.0, 0x0a000005, 0x0a000006, 150);
  Dataset ds = sim.finish("X", "synthetic", Granularity::kPacket);
  std::set<uint16_t> ports;
  for (const auto& v : ds.trace.view) {
    if (v.has_tcp() && v.src_ip == 0x0a000005) ports.insert(v.dst_port);
  }
  EXPECT_GT(ports.size(), 60u);
}

TEST(Attacks, ReflectionHasAmplification) {
  Sim sim(3);
  attack_reflection(sim, 0.0, 10.0, 0x0a000007, 8, 10.0);
  Dataset ds = sim.finish("X", "synthetic", Granularity::kPacket);
  uint64_t to_victim = 0, from_victim = 0;
  for (const auto& v : ds.trace.view) {
    if (v.dst_ip == 0x0a000007) to_victim += v.wire_len;
    if (v.src_ip == 0x0a000007) from_victim += v.wire_len;
  }
  EXPECT_GT(to_victim, 3 * from_victim);  // amplification factor
}

TEST(Attacks, MitmArpEmitsArpOnly) {
  Sim sim(4);
  attack_mitm_arp(sim, 0.0, 5.0, 0x0a000001, 0x0a0000fe, {0x0a000002}, 10.0);
  Dataset ds = sim.finish("X", "synthetic", Granularity::kPacket);
  ASSERT_GT(ds.packets(), 10u);
  for (const auto& v : ds.trace.view) {
    EXPECT_EQ(v.ether_type, 0x0806);
    EXPECT_FALSE(v.has_ip);
  }
}

TEST(Sim, TcpSessionIsParseableAndOrdered) {
  Sim sim(5);
  Sim::TcpSessionSpec spec;
  spec.client = 0x0a000001;
  spec.server = 0x0a000002;
  spec.dport = 80;
  spec.data_pkts = 3;
  sim.tcp_session(1000.0, spec);
  Dataset ds = sim.finish("X", "synthetic", Granularity::kPacket);
  // SYN, SYNACK, ACK, 3x(data+resp), FIN, FINACK, ACK = 12 packets.
  EXPECT_EQ(ds.packets(), 12u);
  EXPECT_TRUE(ds.trace.view.front().tcp_flag(netio::kSyn));
}

}  // namespace
}  // namespace lumen::trace
