// §5.4 synthesizer tests.
#include <gtest/gtest.h>

#include "eval/synthesis.h"

namespace lumen::eval {
namespace {

Benchmark& bench() {
  static Benchmark b = [] {
    Benchmark::Options opts;
    opts.dataset_scale = 0.2;
    return Benchmark(opts);
  }();
  return b;
}

TEST(SynthCandidate, RendersValidAlgorithm) {
  SynthCandidate cand;
  cand.feature_sets = {"zeek", "iiot"};
  cand.add_first_k = true;
  cand.model_type = "GaussianNB";
  cand.normalize = true;
  const core::AlgorithmDef def = cand.to_algorithm("S1");
  auto spec = core::PipelineSpec::parse(def.feature_template);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_TRUE(core::Engine().type_check(spec.value()).ok());
  auto model = core::make_algorithm_model(def);
  ASSERT_TRUE(model.ok()) << model.error().message;
  EXPECT_TRUE(model.value().normalize);
  EXPECT_FALSE(model.value().decorrelate);
  EXPECT_NE(cand.describe().find("zeek+iiot"), std::string::npos);
}

TEST(SynthCandidate, ScoreIsComputable) {
  SynthCandidate cand;
  cand.feature_sets = {"zeek"};
  cand.model_type = "RandomForest";
  const double s = score_candidate(bench(), cand, {"F4", "F6"}, "precision");
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
  EXPECT_GT(s, 0.3);  // zeek+RF is a strong baseline on the Mirai sets
}

TEST(Synthesize, GreedySearchImprovesOverWorstSingle) {
  SynthOptions opts;
  opts.datasets = {"F4", "F6", "F9"};
  opts.blocks = {"zeek", "iiot"};
  opts.models = {"RandomForest", "GaussianNB"};
  const SynthResult result = synthesize(bench(), opts);
  // Stage 1 alone tries blocks x models = 4 candidates.
  EXPECT_GE(result.evaluated, 4u);
  EXPECT_FALSE(result.candidate.feature_sets.empty());
  EXPECT_GT(result.score, 0.0);
  // The winner is at least as good as every logged candidate.
  for (const auto& [desc, score] : result.trace) {
    EXPECT_GE(result.score, score) << desc;
  }
}

TEST(Synthesize, DeterministicAcrossRuns) {
  SynthOptions opts;
  opts.datasets = {"F4"};
  opts.blocks = {"zeek"};
  opts.models = {"GaussianNB"};
  const SynthResult a = synthesize(bench(), opts);
  const SynthResult b = synthesize(bench(), opts);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(a.candidate.describe(), b.candidate.describe());
}

}  // namespace
}  // namespace lumen::eval
