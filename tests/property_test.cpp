// Property-based sweeps across module boundaries:
//  * every aggregate function against an independent naive reference over
//    randomized packet groups;
//  * parser robustness under random byte mutations of valid frames;
//  * JSON parser robustness on arbitrary byte strings;
//  * structural invariants of FeatureTable operations.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/json.h"
#include "core/ops_common.h"
#include "netio/builder.h"
#include "netio/parse.h"
#include "eval/benchmark.h"
#include "trace/sim.h"

namespace lumen {
namespace {

/// A small random (but deterministic) dataset for aggregate checks.
const trace::Dataset& random_traffic() {
  static const trace::Dataset ds = [] {
    trace::Sim sim(777);
    trace::BenignStyle st;
    sim.benign_iot_traffic(0.0, 40.0, 4, st);
    return sim.finish("PT", "property-test", trace::Granularity::kPacket);
  }();
  return ds;
}

/// Naive reference for compute_agg, written independently.
double naive_agg(const trace::Dataset& ds, const std::vector<uint32_t>& idx,
                 const std::string& field, const std::string& func) {
  std::vector<double> xs;
  if (field == "iat") {
    for (size_t i = 1; i < idx.size(); ++i) {
      xs.push_back(ds.trace.view[idx[i]].ts - ds.trace.view[idx[i - 1]].ts);
    }
  } else {
    for (uint32_t p : idx) {
      double v = 0.0;
      core::packet_field(ds.trace.view[p], field, &v);
      xs.push_back(v);
    }
  }
  const double dur =
      idx.size() >= 2
          ? ds.trace.view[idx.back()].ts - ds.trace.view[idx.front()].ts
          : 0.0;
  if (func == "count") return static_cast<double>(idx.size());
  if (func == "duration") return dur;
  if (func == "rate") {
    return dur > 1e-9 ? static_cast<double>(idx.size()) / dur : 0.0;
  }
  if (func == "bytes_rate") {
    double bytes = 0.0;
    for (uint32_t p : idx) bytes += ds.trace.view[p].wire_len;
    return dur > 1e-9 ? bytes / dur : 0.0;
  }
  if (xs.empty()) return 0.0;
  if (func == "sum") {
    double s = 0.0;
    for (double x : xs) s += x;
    return s;
  }
  if (func == "mean") {
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  }
  if (func == "std") {
    double m = 0.0;
    for (double x : xs) m += x;
    m /= static_cast<double>(xs.size());
    double v = 0.0;
    for (double x : xs) v += (x - m) * (x - m);
    // RunningStats uses the sample variance (n-1).
    return xs.size() > 1 ? std::sqrt(v / static_cast<double>(xs.size() - 1))
                         : 0.0;
  }
  if (func == "min") return *std::min_element(xs.begin(), xs.end());
  if (func == "max") return *std::max_element(xs.begin(), xs.end());
  if (func == "range") {
    return *std::max_element(xs.begin(), xs.end()) -
           *std::min_element(xs.begin(), xs.end());
  }
  if (func == "first") return xs.front();
  if (func == "last") return xs.back();
  if (func == "median") {
    std::sort(xs.begin(), xs.end());
    const double rank = 0.5 * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, xs.size() - 1);
    return xs[lo] * (1.0 - (rank - lo)) + xs[hi] * (rank - lo);
  }
  if (func == "distinct") {
    return static_cast<double>(std::set<double>(xs.begin(), xs.end()).size());
  }
  if (func == "entropy") {
    std::map<double, double> counts;
    for (double x : xs) counts[x] += 1.0;
    double h = 0.0;
    for (auto& [k, n] : counts) {
      const double p = n / static_cast<double>(xs.size());
      h -= p * std::log2(p);
    }
    return h;
  }
  if (func == "change_rate") {
    size_t changes = 0;
    for (size_t i = 1; i < xs.size(); ++i) changes += xs[i] != xs[i - 1];
    return dur > 1e-9 ? static_cast<double>(changes) / dur
                      : static_cast<double>(changes);
  }
  ADD_FAILURE() << "reference missing for " << func;
  return 0.0;
}

class AggProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(AggProperty, MatchesNaiveReference) {
  const auto& [field, func] = GetParam();
  const trace::Dataset& ds = random_traffic();
  Rng rng(Rng::seed_from(field + func));
  for (int trial = 0; trial < 25; ++trial) {
    // Random contiguous-ish group of packets.
    const size_t n = 1 + rng.below(60);
    const size_t start = rng.below(ds.packets() - n);
    std::vector<uint32_t> idx;
    for (size_t i = 0; i < n; ++i) {
      idx.push_back(static_cast<uint32_t>(start + i));
    }
    const double got =
        core::compute_agg(ds, idx, core::AggSpec{field, func});
    const double want = naive_agg(ds, idx, field, func);
    ASSERT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)))
        << field << "/" << func << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFuncs, AggProperty,
    ::testing::Combine(
        ::testing::Values("len", "iat", "sport", "ttl"),
        ::testing::Values("mean", "std", "min", "max", "median", "sum",
                          "count", "rate", "duration", "bytes_rate",
                          "distinct", "entropy", "first", "last", "range",
                          "change_rate")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(ParserFuzz, RandomMutationsNeverCrash) {
  // Take valid frames and flip random bytes/truncate; parsing must either
  // succeed or fail cleanly — never crash or read out of bounds (ASAN-
  // friendly by construction: ByteReader bounds-checks).
  const trace::Dataset& ds = random_traffic();
  Rng rng(4242);
  size_t parsed = 0, rejected = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto& base = ds.trace.raw[rng.below(ds.packets())];
    netio::RawPacket pkt = base;
    // Mutate 1-8 random bytes.
    const size_t flips = 1 + rng.below(8);
    for (size_t f = 0; f < flips && !pkt.data.empty(); ++f) {
      pkt.data[rng.below(pkt.data.size())] =
          static_cast<uint8_t>(rng.below(256));
    }
    // Occasionally truncate.
    if (rng.bernoulli(0.3) && !pkt.data.empty()) {
      pkt.data.resize(rng.below(pkt.data.size()) + 1);
    }
    auto res = netio::parse_packet(pkt, netio::LinkType::kEthernet, 0);
    if (res.ok()) ++parsed; else ++rejected;
  }
  // Both outcomes occur; neither dominates absurdly.
  EXPECT_GT(parsed, 100u);
  EXPECT_GT(rejected, 10u);
}

TEST(JsonFuzz, RandomStringsNeverCrash) {
  Rng rng(987);
  const char alphabet[] = "{}[]\",:'0123456789.eE+-truefalsnN \n\t#";
  for (int trial = 0; trial < 5000; ++trial) {
    std::string s;
    const size_t len = rng.below(64);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    }
    auto r = core::Json::parse(s);
    if (r.ok()) {
      // Whatever parsed must dump and re-parse to the same canonical form.
      auto r2 = core::Json::parse(r.value().dump());
      ASSERT_TRUE(r2.ok()) << s;
      EXPECT_EQ(r.value().dump(), r2.value().dump());
    }
  }
}

TEST(TableProperty, SelectAllRowsIsIdentity) {
  features::FeatureTable t = features::FeatureTable::make(10, {"a", "b"});
  Rng rng(5);
  for (double& v : t.data) v = rng.uniform();
  for (size_t r = 0; r < t.rows; ++r) t.unit_time[r] = rng.uniform();
  std::vector<size_t> all(t.rows);
  for (size_t i = 0; i < t.rows; ++i) all[i] = i;
  const features::FeatureTable u = t.select_rows(all);
  EXPECT_EQ(u.data, t.data);
  EXPECT_EQ(u.unit_time, t.unit_time);
}

TEST(TableProperty, SplitIsAPartitionForAnyFraction) {
  features::FeatureTable t = features::FeatureTable::make(97, {"x"});
  Rng rng(6);
  for (size_t r = 0; r < t.rows; ++r) {
    t.at(r, 0) = rng.uniform();
    t.unit_time[r] = rng.uniform(0.0, 100.0);
    t.unit_id[r] = static_cast<int64_t>(r);
  }
  for (double frac : {0.0, 0.1, 0.33, 0.5, 0.77, 1.0}) {
    auto [train, test] = lumen::eval::Benchmark::split_by_time(t, frac);
    EXPECT_EQ(train.rows + test.rows, t.rows) << frac;
    std::set<int64_t> seen;
    for (int64_t id : train.unit_id) EXPECT_TRUE(seen.insert(id).second);
    for (int64_t id : test.unit_id) EXPECT_TRUE(seen.insert(id).second);
    EXPECT_EQ(seen.size(), t.rows);
  }
}

}  // namespace
}  // namespace lumen
