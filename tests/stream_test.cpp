// Streaming-path tests: the streaming extractor must agree exactly with the
// batch damped_stats operation, and the online detector must catch an
// attack that starts after its training prefix.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/stream.h"
#include "ml/metrics.h"
#include "trace/attacks.h"
#include "trace/registry.h"

namespace lumen::core {
namespace {

const trace::Dataset& p1() {
  static const trace::Dataset ds = trace::make_dataset("P1", 0.25);
  return ds;
}

TEST(KitsuneExtractor, MatchesBatchOperationExactly) {
  // Batch path via the registry pipeline.
  auto feats = compute_features(*find_algorithm("A06"), p1());
  ASSERT_TRUE(feats.ok());
  const features::FeatureTable& batch = feats.value();

  // Streaming path, packet by packet.
  KitsuneExtractor extractor;
  ASSERT_EQ(extractor.dim(), batch.cols);
  EXPECT_EQ(extractor.feature_names(), batch.col_names);
  std::vector<double> row;
  for (size_t r = 0; r < batch.rows; ++r) {
    const auto& v = p1().trace.view[static_cast<size_t>(batch.unit_id[r])];
    extractor.process(v, row);
    for (size_t c = 0; c < batch.cols; ++c) {
      ASSERT_DOUBLE_EQ(row[c], batch.at(r, c))
          << "packet " << r << " feature " << batch.col_names[c];
    }
  }
}

TEST(KitsuneExtractor, TracksContextsAndResets) {
  KitsuneExtractor ex;
  EXPECT_EQ(ex.tracked_contexts(), 0u);
  std::vector<double> row;
  for (size_t i = 0; i < 50; ++i) {
    ex.process(p1().trace.view[i], row);
  }
  EXPECT_GT(ex.tracked_contexts(), 10u);
  ex.reset();
  EXPECT_EQ(ex.tracked_contexts(), 0u);
}

TEST(OnlineKitsune, UntrainedScoresZeroButKeepsState) {
  OnlineKitsune det;
  EXPECT_FALSE(det.trained());
  EXPECT_EQ(det.score_packet(p1().trace.view[0]), 0.0);
}

TEST(OnlineKitsune, DetectsPostTrainingAttackStream) {
  // A capture with a clean grace period: ~110s of benign camera traffic,
  // then two known devices turn into Mirai bots and flood (the canonical
  // Kitsune scenario — the infected devices' context statistics shift).
  trace::Sim sim(606060);
  trace::BenignStyle st;
  st.size_scale = 2.0;
  sim.benign_iot_traffic(0.0, 150.0, 5, st);
  const std::vector<uint32_t> bots = {sim.lan_ip(st, 0), sim.lan_ip(st, 1)};
  trace::attack_mirai_flood(sim, 110.0, 35.0, bots, sim.wan_ip(), 14.0);
  const trace::Dataset ds =
      sim.finish("ST", "stream-test", trace::Granularity::kPacket);

  // Train on the leading benign-only packets.
  std::vector<netio::PacketView> benign_prefix;
  for (const auto& v : ds.trace.view) {
    if (ds.pkt_label[v.index] != 0) break;  // stop at the first attack pkt
    benign_prefix.push_back(v);
  }
  ASSERT_GT(benign_prefix.size(), 300u);

  OnlineKitsune det;
  det.train(benign_prefix);
  ASSERT_TRUE(det.trained());
  EXPECT_GT(det.threshold(), 0.0);

  // Stream the remainder live and measure ranking quality.
  std::vector<int> y_true;
  std::vector<double> scores;
  for (size_t i = benign_prefix.size(); i < ds.trace.view.size(); ++i) {
    y_true.push_back(ds.pkt_label[i]);
    scores.push_back(det.score_packet(ds.trace.view[i]));
  }
  EXPECT_GT(ml::auc(y_true, scores), 0.8);
}

// Pin the online scoring contract: score_packet rides the same fused
// PackedDense block path as score_packets, so scoring packets one at a
// time, in micro-batches of 64, or in ragged chunks yields bit-identical
// scores (EXPECT_EQ on doubles — not merely near). This is what lets the
// ingestion runtime chop the stream into arbitrary batches without the
// alert set depending on the chop.
TEST(OnlineKitsune, SinglePacketMatchesMicroBatchedExactly) {
  const trace::Dataset& ds = p1();
  const size_t grace = ds.trace.view.size() * 45 / 100;
  ASSERT_GT(grace, 300u);
  const std::span<const netio::PacketView> prefix(ds.trace.view.data(),
                                                  grace);
  const std::span<const netio::PacketView> live(ds.trace.view.data() + grace,
                                                ds.trace.view.size() - grace);

  const auto run = [&](size_t chunk) {
    OnlineKitsune det;
    det.train(prefix);
    EXPECT_TRUE(det.trained());
    std::vector<double> scores(live.size(), 0.0);
    if (chunk == 1) {
      for (size_t i = 0; i < live.size(); ++i) {
        scores[i] = det.score_packet(live[i]);
      }
    } else {
      for (size_t lo = 0; lo < live.size(); lo += chunk) {
        const size_t n = std::min(chunk, live.size() - lo);
        det.score_packets(live.subspan(lo, n), scores.data() + lo);
      }
    }
    return scores;
  };

  const std::vector<double> one_by_one = run(1);
  const std::vector<double> batched = run(64);
  const std::vector<double> ragged = run(7);
  ASSERT_EQ(one_by_one.size(), batched.size());
  for (size_t i = 0; i < one_by_one.size(); ++i) {
    EXPECT_EQ(one_by_one[i], batched[i]) << "packet " << i;
    EXPECT_EQ(one_by_one[i], ragged[i]) << "packet " << i;
  }
}

}  // namespace
}  // namespace lumen::core
