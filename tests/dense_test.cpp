// Dense-kernel library tests: every kernel against a naive reference across
// odd sizes, alignments, and strides, on every compiled backend (the scalar
// reference path and, when the host can run it, AVX2/FMA); the LUMEN_SIMD
// parsing contract; and batched-vs-per-row score equivalence for each model
// reworked on top of the kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "ml/dense.h"
#include "ml/gmm.h"
#include "ml/kernel.h"
#include "ml/kitnet.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/mlp.h"

namespace lumen::ml {
namespace {

using dense::Backend;
using dense::ScopedBackend;

/// Backends compiled into this binary and runnable on this host.
std::vector<Backend> runnable_backends() {
  std::vector<Backend> b = {Backend::kScalar};
  if (dense::avx2_available()) b.push_back(Backend::kAvx2);
  return b;
}

/// |a - b| <= atol + rtol * max(|a|, |b|).
void expect_close(double a, double b, double atol, double rtol,
                  const char* what) {
  const double tol = atol + rtol * std::max(std::fabs(a), std::fabs(b));
  EXPECT_NEAR(a, b, tol) << what;
}

// The sizes exercise every AVX2 remainder path (n % 4 in {0,1,2,3}) plus
// empty and GEMM-panel-crossing shapes.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 100, 150};

std::vector<double> random_vec(size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

TEST(DenseDispatch, EnvParsing) {
  using simd::Request;
  EXPECT_EQ(simd::parse_request(nullptr), Request::kAuto);
  EXPECT_EQ(simd::parse_request(""), Request::kAuto);
  EXPECT_EQ(simd::parse_request("off"), Request::kScalar);
  EXPECT_EQ(simd::parse_request("scalar"), Request::kScalar);
  EXPECT_EQ(simd::parse_request("0"), Request::kScalar);
  EXPECT_EQ(simd::parse_request("none"), Request::kScalar);
  EXPECT_EQ(simd::parse_request("avx2"), Request::kAvx2);
  EXPECT_EQ(simd::parse_request("on"), Request::kAvx2);
  EXPECT_EQ(simd::parse_request("auto"), Request::kAuto);
  EXPECT_EQ(simd::parse_request("garbage"), Request::kAuto);
}

TEST(DenseDispatch, ScopedBackendForcesScalar) {
  {
    ScopedBackend guard(Backend::kScalar);
    EXPECT_EQ(dense::active_backend(), Backend::kScalar);
  }
  // kAvx2 request falls back to scalar when the host can't run it.
  {
    ScopedBackend guard(Backend::kAvx2);
    if (dense::avx2_available()) {
      EXPECT_EQ(dense::active_backend(), Backend::kAvx2);
    } else {
      EXPECT_EQ(dense::active_backend(), Backend::kScalar);
    }
  }
}

TEST(DenseKernels, DotAxpyAgainstNaive) {
  Rng rng(1);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t n : kSizes) {
      const std::vector<double> x = random_vec(n, rng);
      std::vector<double> y = random_vec(n, rng);
      double ref = 0.0;
      for (size_t i = 0; i < n; ++i) ref += x[i] * y[i];
      expect_close(dense::dot(n, x.data(), y.data()), ref, 1e-12, 1e-12,
                   "dot");

      std::vector<double> y2 = y;
      const double alpha = 0.37;
      for (size_t i = 0; i < n; ++i) y2[i] += alpha * x[i];
      dense::axpy(n, alpha, x.data(), y.data());
      for (size_t i = 0; i < n; ++i) {
        expect_close(y[i], y2[i], 1e-14, 1e-14, "axpy");
      }
    }
  }
}

TEST(DenseKernels, RotContiguousAndStrided) {
  Rng rng(2);
  const double c = std::cos(0.7), s = std::sin(0.7);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t n : kSizes) {
      for (size_t stride : {size_t{1}, size_t{3}}) {
        std::vector<double> x = random_vec(n * stride + 1, rng);
        std::vector<double> y = random_vec(n * stride + 1, rng);
        std::vector<double> xr = x, yr = y;
        for (size_t i = 0; i < n; ++i) {
          const double xv = xr[i * stride];
          const double yv = yr[i * stride];
          xr[i * stride] = c * xv - s * yv;
          yr[i * stride] = s * xv + c * yv;
        }
        dense::rot(n, x.data(), stride, y.data(), stride, c, s);
        for (size_t i = 0; i < x.size(); ++i) {
          expect_close(x[i], xr[i], 1e-14, 1e-14, "rot x");
          expect_close(y[i], yr[i], 1e-14, 1e-14, "rot y");
        }
      }
    }
  }
}

TEST(DenseKernels, GemvAgainstNaive) {
  Rng rng(3);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t m : {size_t{1}, size_t{3}, size_t{17}}) {
      for (size_t n : kSizes) {
        const size_t lda = n + 2;  // padded rows: stride > n
        const std::vector<double> a = random_vec(m * lda, rng);
        const std::vector<double> x = random_vec(n, rng);
        const std::vector<double> bias = random_vec(m, rng);
        std::vector<double> y(m, -1.0), ybias(m, -1.0);
        dense::gemv(m, n, a.data(), lda, x.data(), nullptr, y.data());
        dense::gemv(m, n, a.data(), lda, x.data(), bias.data(), ybias.data());
        for (size_t i = 0; i < m; ++i) {
          double ref = 0.0;
          for (size_t j = 0; j < n; ++j) ref += a[i * lda + j] * x[j];
          expect_close(y[i], ref, 1e-12, 1e-12, "gemv");
          expect_close(ybias[i], ref + bias[i], 1e-12, 1e-12, "gemv bias");
        }

        // Transposed product and rank-1 update on the same shapes.
        const std::vector<double> xm = random_vec(m, rng);
        std::vector<double> yt(n, -1.0);
        dense::gemv_t(m, n, a.data(), lda, xm.data(), yt.data());
        for (size_t j = 0; j < n; ++j) {
          double ref = 0.0;
          for (size_t i = 0; i < m; ++i) ref += a[i * lda + j] * xm[i];
          expect_close(yt[j], ref, 1e-12, 1e-11, "gemv_t");
        }

        std::vector<double> au = a, aref = a;
        const std::vector<double> yv = random_vec(n, rng);
        dense::ger(m, n, 0.21, xm.data(), yv.data(), au.data(), lda);
        for (size_t i = 0; i < m; ++i) {
          for (size_t j = 0; j < n; ++j) {
            aref[i * lda + j] += 0.21 * xm[i] * yv[j];
          }
        }
        for (size_t i = 0; i < au.size(); ++i) {
          expect_close(au[i], aref[i], 1e-13, 1e-13, "ger");
        }
      }
    }
  }
}

TEST(DenseKernels, GemmNtAgainstNaive) {
  Rng rng(4);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t m : {size_t{1}, size_t{2}, size_t{5}, size_t{64}}) {
      for (size_t n : {size_t{1}, size_t{3}, size_t{8}, size_t{33}}) {
        for (size_t k : {size_t{0}, size_t{1}, size_t{7}, size_t{130}}) {
          const size_t lda = k + 1, ldb = k + 3, ldc = n + 2;
          const std::vector<double> a = random_vec(m * lda, rng);
          const std::vector<double> b = random_vec(n * ldb, rng);
          const std::vector<double> bias = random_vec(n, rng);
          std::vector<double> c0(m * ldc, 0.5);
          std::vector<double> cb = c0, cacc = c0;
          dense::gemm_nt(m, n, k, a.data(), lda, b.data(), ldb, nullptr, 0.0,
                         c0.data(), ldc);
          dense::gemm_nt(m, n, k, a.data(), lda, b.data(), ldb, bias.data(),
                         0.0, cb.data(), ldc);
          dense::gemm_nt(m, n, k, a.data(), lda, b.data(), ldb, nullptr, 1.0,
                         cacc.data(), ldc);
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
              double ref = 0.0;
              for (size_t l = 0; l < k; ++l) {
                ref += a[i * lda + l] * b[j * ldb + l];
              }
              expect_close(c0[i * ldc + j], ref, 1e-11, 1e-10, "gemm_nt");
              expect_close(cb[i * ldc + j], ref + bias[j], 1e-11, 1e-10,
                           "gemm_nt bias");
              expect_close(cacc[i * ldc + j], ref + 0.5, 1e-11, 1e-10,
                           "gemm_nt beta=1");
              // Cells beyond column n stay untouched.
              for (size_t j2 = n; j2 < ldc; ++j2) {
                EXPECT_EQ(c0[i * ldc + j2], 0.5);
              }
            }
          }
        }
      }
    }
  }
}

TEST(DenseKernels, GemmNnAndTnAgainstNaive) {
  Rng rng(5);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t m : {size_t{1}, size_t{4}, size_t{19}}) {
      for (size_t n : {size_t{1}, size_t{6}, size_t{41}}) {
        for (size_t k : {size_t{1}, size_t{5}, size_t{32}}) {
          // gemm_nn: C[m x n] = A[m x k] B[k x n].
          const size_t lda = k + 1, ldb = n + 2, ldc = n + 2;
          const std::vector<double> a = random_vec(m * lda, rng);
          const std::vector<double> b = random_vec(k * ldb, rng);
          std::vector<double> c(m * ldc, -2.0);
          dense::gemm_nn(m, n, k, a.data(), lda, b.data(), ldb, 0.0, c.data(),
                         ldc);
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
              double ref = 0.0;
              for (size_t l = 0; l < k; ++l) {
                ref += a[i * lda + l] * b[l * ldb + j];
              }
              expect_close(c[i * ldc + j], ref, 1e-11, 1e-10, "gemm_nn");
            }
          }

          // gemm_tn: C[m x n] += alpha A[k x m]^T B[k x n].
          const size_t lda2 = m + 1;
          const std::vector<double> a2 = random_vec(k * lda2, rng);
          std::vector<double> c2(m * ldc, 0.25), c2ref(m * ldc, 0.25);
          dense::gemm_tn(m, n, k, -0.5, a2.data(), lda2, b.data(), ldb,
                         c2.data(), ldc);
          for (size_t l = 0; l < k; ++l) {
            for (size_t i = 0; i < m; ++i) {
              for (size_t j = 0; j < n; ++j) {
                c2ref[i * ldc + j] += -0.5 * a2[l * lda2 + i] * b[l * ldb + j];
              }
            }
          }
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
              expect_close(c2[i * ldc + j], c2ref[i * ldc + j], 1e-11, 1e-10,
                           "gemm_tn");
            }
          }
        }
      }
    }
  }
}

TEST(DenseKernels, ActivationSweeps) {
  Rng rng(6);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t n : kSizes) {
      std::vector<double> x = random_vec(n, rng);
      // Include extreme values to exercise the clamp paths.
      if (n > 2) {
        x[0] = 750.0;
        x[1] = -750.0;
        x[2] = 0.0;
      }
      std::vector<double> sig = x, rel = x, ex = x;
      dense::sigmoid_sweep(n, sig.data());
      dense::relu_sweep(n, rel.data());
      dense::exp_sweep(n, ex.data());
      for (size_t i = 0; i < n; ++i) {
        expect_close(sig[i], 1.0 / (1.0 + std::exp(-x[i])), 1e-12, 1e-9,
                     "sigmoid");
        EXPECT_EQ(rel[i], std::max(0.0, x[i]));
        expect_close(ex[i], std::exp(std::clamp(x[i], -708.0, 708.0)), 0.0,
                     1e-9, "exp");
        EXPECT_TRUE(std::isfinite(ex[i]));
      }
    }
  }
}

TEST(DenseKernels, SqDistAgainstNaive) {
  Rng rng(7);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t n : kSizes) {
      const size_t rows = 9, ldy = n + 3;
      const std::vector<double> x = random_vec(n, rng);
      const std::vector<double> y = random_vec(rows * ldy, rng);
      std::vector<double> out(rows, -1.0);
      dense::sq_dist(rows, n, x.data(), y.data(), ldy, out.data());
      for (size_t r = 0; r < rows; ++r) {
        double ref = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double diff = x[i] - y[r * ldy + i];
          ref += diff * diff;
        }
        expect_close(out[r], ref, 1e-12, 1e-11, "sq_dist");
      }
    }
  }
}

TEST(DenseKernels, SqDistBatchMatchesDirect) {
  Rng rng(8);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t n : {size_t{1}, size_t{5}, size_t{40}}) {
      const size_t m = 11, r = 300;  // r > the stack-norm buffer (256)
      const size_t ldx = n + 1, ldy = n + 2, ldd = r + 3;
      const std::vector<double> x = random_vec(m * ldx, rng);
      const std::vector<double> y = random_vec(r * ldy, rng);
      std::vector<double> d(m * ldd, -1.0);
      dense::sq_dist_batch(m, r, n, x.data(), ldx, y.data(), ldy, nullptr,
                           nullptr, d.data(), ldd);
      // Precomputed norms must give the same answer.
      std::vector<double> xn(m), yn(r);
      dense::row_sq_norms(m, n, x.data(), ldx, xn.data());
      dense::row_sq_norms(r, n, y.data(), ldy, yn.data());
      std::vector<double> d2(m * ldd, -1.0);
      dense::sq_dist_batch(m, r, n, x.data(), ldx, y.data(), ldy, xn.data(),
                           yn.data(), d2.data(), ldd);
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < r; ++j) {
          double ref = 0.0;
          for (size_t c = 0; c < n; ++c) {
            const double diff = x[i * ldx + c] - y[j * ldy + c];
            ref += diff * diff;
          }
          // The expansion cancels, so the tolerance scales with the norms.
          const double scale = std::max(1.0, xn[i] + yn[j]);
          EXPECT_NEAR(d[i * ldd + j], ref, 1e-10 * scale) << "sq_dist_batch";
          EXPECT_EQ(d[i * ldd + j], d2[i * ldd + j]);
          EXPECT_GE(d[i * ldd + j], 0.0);
        }
      }
    }
  }
}

TEST(DenseKernels, SqDistBatchSmallBatchesFallBackBitIdentical) {
  // Below the crossover, sq_dist_batch must route through the per-row
  // kernel — bit-identical to calling sq_dist once per query row.
  Rng rng(9);
  static_assert(dense::kSqDistBatchCrossover > 1);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t m : {size_t{1}, size_t{3}, dense::kSqDistBatchCrossover - 1}) {
      const size_t r = 57, n = 23;
      const size_t ldx = n + 1, ldy = n + 2, ldd = r + 1;
      const std::vector<double> x = random_vec(m * ldx, rng);
      const std::vector<double> y = random_vec(r * ldy, rng);
      std::vector<double> d(m * ldd, -1.0);
      dense::sq_dist_batch(m, r, n, x.data(), ldx, y.data(), ldy, nullptr,
                           nullptr, d.data(), ldd);
      std::vector<double> ref(r, -1.0);
      for (size_t i = 0; i < m; ++i) {
        dense::sq_dist(r, n, x.data() + i * ldx, y.data(), ldy, ref.data());
        for (size_t j = 0; j < r; ++j) {
          EXPECT_EQ(d[i * ldd + j], ref[j]) << "m=" << m << " i=" << i;
        }
      }
    }
  }
}

TEST(DenseKernels, PackedDenseMatchesGemv) {
  Rng rng(10);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    for (size_t out : {size_t{1}, size_t{3}, size_t{8}, size_t{13}}) {
      for (size_t in : {size_t{1}, size_t{7}, size_t{23}}) {
        const size_t ldw = in + 2;
        const std::vector<double> w = random_vec(out * ldw, rng);
        const std::vector<double> bias = random_vec(out, rng);
        dense::PackedDense p;
        EXPECT_TRUE(p.empty());
        p.pack(out, in, w.data(), ldw, bias.data());
        EXPECT_FALSE(p.empty());
        EXPECT_EQ(p.out_dim(), out);
        EXPECT_EQ(p.in_dim(), in);
        EXPECT_EQ(p.padded_out() % dense::kPackPad, size_t{0});
        EXPECT_GE(p.padded_out(), out);

        const size_t m = 6, ldx = in + 1, ldy = p.padded_out();
        const std::vector<double> x = random_vec(m * ldx, rng);
        std::vector<double> y(m * ldy, -1.0);
        p.apply(m, x.data(), ldx, y.data(), ldy);
        for (size_t i = 0; i < m; ++i) {
          for (size_t o = 0; o < out; ++o) {
            double ref = bias[o];
            for (size_t c = 0; c < in; ++c) {
              ref += w[o * ldw + c] * x[i * ldx + c];
            }
            expect_close(y[i * ldy + o], ref, 1e-12, 1e-12, "PackedDense");
          }
          // Padding columns carry zero weights and zero bias.
          for (size_t o = out; o < p.padded_out(); ++o) {
            EXPECT_EQ(y[i * ldy + o], 0.0);
          }
        }
      }
    }
  }
}

TEST(DenseKernels, PackedDenseBatchSizeBitInvariant) {
  // The whole micro-batched live path rests on this: chopping the same
  // rows into different batch sizes must give bit-identical outputs.
  Rng rng(11);
  const size_t out = 11, in = 17, m = 29;
  const std::vector<double> w = random_vec(out * in, rng);
  const std::vector<double> bias = random_vec(out, rng);
  dense::PackedDense p;
  p.pack(out, in, w.data(), in, bias.data());
  const size_t ldy = p.padded_out();
  const std::vector<double> x = random_vec(m * in, rng);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    std::vector<double> whole(m * ldy, -1.0);
    p.apply(m, x.data(), in, whole.data(), ldy);
    for (size_t chunk : {size_t{1}, size_t{4}, size_t{5}, size_t{16}}) {
      std::vector<double> piecewise(m * ldy, -2.0);
      for (size_t lo = 0; lo < m; lo += chunk) {
        const size_t nrows = std::min(chunk, m - lo);
        p.apply(nrows, x.data() + lo * in, in, piecewise.data() + lo * ldy,
                ldy);
      }
      for (size_t i = 0; i < m * ldy; ++i) {
        EXPECT_EQ(whole[i], piecewise[i]) << "chunk=" << chunk << " i=" << i;
      }
    }
  }
}

// ------------------------------------------------- model-level equivalence

FeatureTable labeled_set(size_t rows, size_t dims, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t d = 0; d < dims; ++d) names.push_back("f" + std::to_string(d));
  FeatureTable t = FeatureTable::make(rows, names);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const bool pos = i % 3 == 0;
    for (size_t d = 0; d < dims; ++d) {
      t.at(i, d) = rng.normal(pos ? 2.0 : 0.0, 1.0);
    }
    t.labels[i] = pos ? 1 : 0;
    t.unit_id[i] = static_cast<int64_t>(i);
    t.unit_time[i] = static_cast<double>(i);
  }
  return t;
}

void expect_scores_close(const std::vector<double>& batched,
                         const std::vector<double>& perrow, double atol,
                         double rtol, const char* what) {
  ASSERT_EQ(batched.size(), perrow.size()) << what;
  for (size_t i = 0; i < batched.size(); ++i) {
    expect_close(batched[i], perrow[i], atol, rtol, what);
  }
}

TEST(BatchedEquivalence, Mlp) {
  const FeatureTable X = labeled_set(230, 9, 11);
  MlpConfig cfg;
  cfg.hidden = {16, 8};
  cfg.epochs = 5;
  Mlp model(cfg);
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    expect_scores_close(model.score(X), model.score_perrow(X), 1e-9, 1e-9,
                        "Mlp");
    // score_row must agree with the table path too.
    const std::vector<double> s = model.score(X);
    Mlp::ScoreScratch scratch;
    for (size_t r = 0; r < X.rows; r += 37) {
      expect_close(model.score_row(X.row(r), scratch), s[r], 1e-9, 1e-9,
                   "Mlp::score_row");
    }
  }
}

TEST(BatchedEquivalence, AutoEncoder) {
  const FeatureTable X = labeled_set(200, 7, 12);
  AutoEncoderConfig cfg;
  cfg.epochs = 2;
  AutoEncoderDetector model(cfg);
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    expect_scores_close(model.score(X), model.score_perrow(X), 1e-9, 1e-9,
                        "AutoEncoder");
  }
}

TEST(BatchedEquivalence, KitNet) {
  const FeatureTable X = labeled_set(300, 12, 13);
  KitNet::Config cfg;
  cfg.fm_grace = 100;
  cfg.epochs = 1;
  KitNet model(cfg);
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    expect_scores_close(model.score(X), model.score_perrow(X), 1e-9, 1e-9,
                        "KitNet");
    const std::vector<double> s = model.score(X);
    KitNet::ScoreScratch scratch;
    for (size_t r = 0; r < X.rows; r += 41) {
      expect_close(model.score_row(X.row(r), scratch), s[r], 1e-9, 1e-9,
                   "KitNet::score_row");
    }
  }
}

TEST(BatchedEquivalence, AutoEncoderScoreRowsSealedAndBatchInvariant) {
  Rng rng(19);
  const size_t dim = 9, m = 47;
  AutoEncoderCore ae(dim, 0.75, 0.1, 21);
  std::vector<double> sample(dim);
  for (size_t s = 0; s < 300; ++s) {
    for (double& v : sample) v = rng.normal(0.0, 1.0);
    ae.train_sample(sample);
  }
  EXPECT_FALSE(ae.sealed());  // train_sample invalidates any seal
  ae.seal();
  EXPECT_TRUE(ae.sealed());
  const std::vector<double> x = random_vec(m * dim, rng);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    AutoEncoderCore::RowsScratch scratch;
    std::vector<double> whole(m, -1.0);
    ae.score_rows(x.data(), m, dim, whole.data(), scratch);
    // Chopping the stream differently must not move a single bit.
    for (size_t chunk : {size_t{1}, size_t{8}, size_t{16}, size_t{64}}) {
      std::vector<double> piecewise(m, -2.0);
      for (size_t lo = 0; lo < m; lo += chunk) {
        const size_t n = std::min(chunk, m - lo);
        ae.score_rows(x.data() + lo * dim, n, dim, piecewise.data() + lo,
                      scratch);
      }
      for (size_t i = 0; i < m; ++i) {
        EXPECT_EQ(whole[i], piecewise[i]) << "chunk=" << chunk << " i=" << i;
      }
    }
    // And the fused path agrees with the per-row reference numerically.
    AutoEncoderCore::ScoreScratch row_scratch;
    for (size_t i = 0; i < m; ++i) {
      expect_close(whole[i],
                   ae.score_sample(
                       std::span<const double>(x.data() + i * dim, dim),
                       row_scratch),
                   1e-9, 1e-9, "score_rows vs score_sample");
    }
  }
}

TEST(BatchedEquivalence, KitNetScoreRowsBatchInvariant) {
  const FeatureTable X = labeled_set(300, 12, 22);
  KitNet::Config cfg;
  cfg.fm_grace = 100;
  cfg.epochs = 1;
  KitNet model(cfg);
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    KitNet::RowsScratch scratch;
    std::vector<double> whole(X.rows, -1.0);
    model.score_rows(X.data.data(), X.rows, X.cols, whole.data(), scratch);
    for (size_t chunk : {size_t{1}, size_t{8}, size_t{33}, size_t{64}}) {
      std::vector<double> piecewise(X.rows, -2.0);
      for (size_t lo = 0; lo < X.rows; lo += chunk) {
        const size_t n = std::min(chunk, X.rows - lo);
        model.score_rows(X.data.data() + lo * X.cols, n, X.cols,
                         piecewise.data() + lo, scratch);
      }
      for (size_t i = 0; i < X.rows; ++i) {
        EXPECT_EQ(whole[i], piecewise[i]) << "chunk=" << chunk << " i=" << i;
      }
    }
    // Numerically in family with the blocked table path.
    expect_scores_close(whole, model.score(X), 1e-9, 1e-9,
                        "KitNet::score_rows vs score");
  }
}

TEST(BatchedEquivalence, MlpScoreRowsBatchInvariant) {
  const FeatureTable X = labeled_set(230, 9, 23);
  MlpConfig cfg;
  cfg.hidden = {16, 8};
  cfg.epochs = 5;
  Mlp model(cfg);
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    Mlp::RowsScratch scratch;
    std::vector<double> whole(X.rows, -1.0);
    model.score_rows(X.data.data(), X.rows, X.cols, whole.data(), scratch);
    for (size_t chunk : {size_t{1}, size_t{8}, size_t{64}}) {
      std::vector<double> piecewise(X.rows, -2.0);
      for (size_t lo = 0; lo < X.rows; lo += chunk) {
        const size_t n = std::min(chunk, X.rows - lo);
        model.score_rows(X.data.data() + lo * X.cols, n, X.cols,
                         piecewise.data() + lo, scratch);
      }
      for (size_t i = 0; i < X.rows; ++i) {
        EXPECT_EQ(whole[i], piecewise[i]) << "chunk=" << chunk << " i=" << i;
      }
    }
    expect_scores_close(whole, model.score(X), 1e-9, 1e-9,
                        "Mlp::score_rows vs score");
  }
}

TEST(BatchedEquivalence, Knn) {
  const FeatureTable X = labeled_set(240, 6, 14);
  Knn model(KnnConfig{.k = 5, .max_train_rows = 150, .seed = 13});
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    expect_scores_close(model.score(X), model.score_perrow(X), 1e-9, 0.0,
                        "Knn");
  }
}

TEST(BatchedEquivalence, OneClassSvm) {
  const FeatureTable X = labeled_set(220, 5, 15);
  OneClassSvm::Config cfg;
  cfg.max_train_rows = 120;
  cfg.iters = 40;
  OneClassSvm model(cfg);
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    expect_scores_close(model.score(X), model.score_perrow(X), 1e-8, 1e-6,
                        "OneClassSvm");
  }
}

TEST(BatchedEquivalence, Gmm) {
  const FeatureTable X = labeled_set(260, 6, 16);
  Gmm::Config cfg;
  cfg.components = 3;
  cfg.iters = 15;
  Gmm model(cfg);
  model.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    expect_scores_close(model.score(X), model.score_perrow(X), 1e-8, 1e-8,
                        "Gmm");
  }
}

TEST(BatchedEquivalence, LinearModels) {
  const FeatureTable X = labeled_set(210, 8, 17);
  LinearSvm svm;
  svm.fit(X);
  LogisticRegression lr;
  lr.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    expect_scores_close(svm.score(X), svm.score_perrow(X), 1e-9, 1e-7,
                        "LinearSvm");
    expect_scores_close(lr.score(X), lr.score_perrow(X), 1e-9, 1e-7,
                        "LogisticRegression");
  }
}

TEST(BatchedEquivalence, NystromTransform) {
  const FeatureTable X = labeled_set(190, 7, 18);
  NystromMap::Config cfg;
  cfg.n_landmarks = 32;
  NystromMap map(cfg);
  map.fit(X);
  for (Backend be : runnable_backends()) {
    ScopedBackend guard(be);
    const FeatureTable a = map.transform(X);
    const FeatureTable b = map.transform_perrow(X);
    ASSERT_EQ(a.rows, b.rows);
    ASSERT_EQ(a.cols, b.cols);
    for (size_t r = 0; r < a.rows; ++r) {
      for (size_t c = 0; c < a.cols; ++c) {
        expect_close(a.at(r, c), b.at(r, c), 1e-8, 1e-6, "NystromTransform");
      }
    }
  }
}

}  // namespace
}  // namespace lumen::ml
