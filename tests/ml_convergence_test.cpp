// Learning-theory sanity properties of the model zoo:
//  * CART trees are invariant to strictly monotone feature transforms;
//  * label-shuffled training yields chance-level AUC (no leakage anywhere);
//  * autoencoders converge on fixed inputs and freeze at zero learning rate;
//  * more epochs don't hurt training fit;
//  * class weighting handles heavy imbalance.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace lumen::ml {
namespace {

FeatureTable blobs(size_t n_per_class, size_t dims, double gap,
                   uint64_t seed) {
  std::vector<std::string> names;
  for (size_t d = 0; d < dims; ++d) names.push_back("f" + std::to_string(d));
  FeatureTable t = FeatureTable::make(2 * n_per_class, names);
  Rng rng(seed);
  for (size_t i = 0; i < t.rows; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    for (size_t d = 0; d < dims; ++d) {
      t.at(i, d) = rng.normal(label * gap, 1.0);
    }
    t.labels[i] = label;
  }
  return t;
}

/// x -> exp(x/3): strictly increasing, wildly non-linear.
FeatureTable monotone_transform(const FeatureTable& t) {
  FeatureTable u = t;
  for (double& v : u.data) v = std::exp(v / 3.0);
  return u;
}

TEST(TreeInvariance, MonotoneFeatureTransformPreservesPredictions) {
  const FeatureTable train = blobs(150, 3, 2.0, 101);
  const FeatureTable test = blobs(80, 3, 2.0, 102);
  DecisionTree a, b;
  a.fit(train);
  b.fit(monotone_transform(train));
  // Axis-aligned splits depend only on feature ORDER, so the transformed
  // tree must classify the transformed test set identically.
  EXPECT_EQ(a.predict(test), b.predict(monotone_transform(test)));
}

TEST(ForestInvariance, MonotoneFeatureTransformPreservesPredictions) {
  const FeatureTable train = blobs(120, 3, 2.0, 103);
  const FeatureTable test = blobs(60, 3, 2.0, 104);
  RandomForest a, b;  // same seed -> same bootstrap/feature draws
  a.fit(train);
  b.fit(monotone_transform(train));
  EXPECT_EQ(a.predict(test), b.predict(monotone_transform(test)));
}

TEST(NoLeakage, ShuffledLabelsGiveChanceAuc) {
  FeatureTable train = blobs(250, 4, 3.0, 105);
  Rng rng(106);
  rng.shuffle(train.labels);  // destroy the feature-label relationship
  const FeatureTable test = blobs(200, 4, 3.0, 107);
  RandomForest rf;
  rf.fit(train);
  // On FRESH data there is nothing to have learned: AUC ~ 0.5.
  EXPECT_NEAR(auc(test.labels, rf.score(test)), 0.5, 0.12);
}

TEST(AutoEncoderCore, ConvergesOnAFixedInput) {
  AutoEncoderCore ae(5, 0.75, 0.3, 7);
  const std::vector<double> x = {0.2, 0.9, 0.5, 0.1, 0.7};
  // Prime the normalizer range so the input isn't degenerate.
  const std::vector<double> lo(5, 0.0), hi(5, 1.0);
  ae.train_sample(lo);
  ae.train_sample(hi);
  for (int i = 0; i < 600; ++i) ae.train_sample(x);
  EXPECT_LT(ae.score_sample(x), 0.02);
}

TEST(AutoEncoderCore, ZeroLearningRateIsFrozen) {
  AutoEncoderCore ae(4, 0.75, 0.0, 9);
  Rng rng(11);
  std::vector<double> x(4);
  for (double& v : x) v = rng.uniform();
  ae.train_sample(x);  // initializes the normalizer
  const double before = ae.score_sample(x);
  for (int i = 0; i < 200; ++i) ae.train_sample(x);
  EXPECT_DOUBLE_EQ(ae.score_sample(x), before);
}

TEST(Mlp, MoreEpochsDoNotHurtTrainingFit) {
  const FeatureTable train = blobs(150, 3, 1.5, 113);
  MlpConfig few;
  few.epochs = 2;
  MlpConfig many;
  many.epochs = 40;
  Mlp a(few), b(many);
  a.fit(train);
  b.fit(train);
  const double f1_few = f1(confusion(train.labels, a.predict(train)));
  const double f1_many = f1(confusion(train.labels, b.predict(train)));
  EXPECT_GE(f1_many, f1_few - 0.05);
  EXPECT_GT(f1_many, 0.8);
}

TEST(LinearSvm, ClassWeightingHandlesImbalance) {
  // 95/5 imbalance: without class weighting the SVM would predict the
  // majority class; ours must still find the minority.
  FeatureTable t = FeatureTable::make(600, {"x", "y"});
  Rng rng(115);
  for (size_t i = 0; i < t.rows; ++i) {
    const bool rare = i >= 570;
    t.at(i, 0) = rng.normal(rare ? 4.0 : 0.0, 1.0);
    t.at(i, 1) = rng.normal(rare ? 4.0 : 0.0, 1.0);
    t.labels[i] = rare ? 1 : 0;
  }
  LinearSvm svm;
  svm.fit(t);
  const Confusion c = confusion(t.labels, svm.predict(t));
  EXPECT_GT(recall(c), 0.6);
  EXPECT_GT(precision(c), 0.5);
}

}  // namespace
}  // namespace lumen::ml
