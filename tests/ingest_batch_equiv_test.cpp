// Golden equivalence for the micro-batched online scoring path: across the
// P1-P4 captures, fault-injected replays, and every score_batch size, the
// micro-batched consumer must produce bit-identical scores and alert sets
// to the row-at-a-time baseline (consumer_batch = 1, score_batch = 1).
// This is the contract that makes Options::score_batch a pure throughput
// knob — see OnlineKitsune::score_packets and dense::PackedDense.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/ingest.h"
#include "core/stream.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace lumen {
namespace {

using core::CollectingSink;
using core::IngestRuntime;
using core::KitsuneScorer;
using core::OnlineKitsune;
using netio::FaultInjectingSource;
using netio::FaultOptions;
using netio::ReplayOptions;
using netio::TraceReplaySource;

/// Records every scored packet (capture index, score) and every alert, in
/// delivery order. With one consumer, delivery order is consumption order.
class RecordingSink : public core::AlertSink {
 public:
  void on_alert(const core::Alert& alert) override {
    alerts.push_back(alert.capture_index);
  }
  void on_packet(const netio::PacketView& view, double score,
                 bool /*alerted*/) override {
    packets.emplace_back(view.index, score);
  }

  std::vector<uint32_t> alerts;
  std::vector<std::pair<uint32_t, double>> packets;
};

struct RunResult {
  std::vector<uint32_t> alerts;
  std::vector<std::pair<uint32_t, double>> packets;
};

/// One single-consumer run over `source`, scoring with a fresh copy of the
/// pre-trained detector, with the given batching knobs.
RunResult run_once(const OnlineKitsune& proto, netio::PacketSource& source,
                   size_t consumer_batch, size_t score_batch) {
  IngestRuntime::Options opts;
  opts.consumers = 1;
  opts.consumer_batch = consumer_batch;
  opts.score_batch = score_batch;
  RecordingSink sink;
  IngestRuntime rt(
      opts,
      [&proto](size_t) { return std::make_unique<KitsuneScorer>(proto); },
      &sink);
  auto stats = rt.run(source);
  EXPECT_TRUE(stats.ok());
  RunResult r;
  r.alerts = std::move(sink.alerts);
  r.packets = std::move(sink.packets);
  std::sort(r.alerts.begin(), r.alerts.end());
  return r;
}

void expect_bit_identical(const RunResult& got, const RunResult& baseline,
                          const char* what) {
  ASSERT_EQ(got.packets.size(), baseline.packets.size()) << what;
  for (size_t i = 0; i < got.packets.size(); ++i) {
    EXPECT_EQ(got.packets[i].first, baseline.packets[i].first)
        << what << " packet order, i=" << i;
    // Bit-identical, not merely close: EXPECT_EQ on the doubles.
    EXPECT_EQ(got.packets[i].second, baseline.packets[i].second)
        << what << " score, capture_index=" << got.packets[i].first;
  }
  EXPECT_EQ(got.alerts, baseline.alerts) << what;
}

const size_t kScoreBatches[] = {1, 8, 16, 32, 64};

TEST(MicroBatchEquivalence, BitIdenticalAcrossCaptures) {
  size_t total_alerts = 0;
  for (const char* id : {"P1", "P2", "P3", "P4"}) {
    const trace::Dataset ds = trace::make_dataset(id, 0.05);
    const size_t grace = ds.trace.view.size() * 45 / 100;
    ASSERT_GT(grace, 0u) << id;
    OnlineKitsune proto;
    proto.train({ds.trace.view.data(), grace});

    ReplayOptions replay;
    replay.begin = grace;
    // Row-at-a-time baseline: one-packet claims, one-row score batches.
    TraceReplaySource base_src(ds.trace, replay);
    const RunResult baseline = run_once(proto, base_src, 1, 1);
    ASSERT_FALSE(baseline.packets.empty()) << id;
    total_alerts += baseline.alerts.size();

    for (size_t sb : kScoreBatches) {
      TraceReplaySource src(ds.trace, replay);
      const RunResult got = run_once(proto, src, /*consumer_batch=*/64, sb);
      expect_bit_identical(got, baseline,
                           (std::string(id) + " score_batch=" +
                            std::to_string(sb))
                               .c_str());
    }
  }
  // The comparison must not be vacuous: the attack segments fire somewhere.
  EXPECT_GT(total_alerts, 0u);
}

TEST(MicroBatchEquivalence, BitIdenticalUnderFaultInjection) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.05);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});

  FaultOptions faults;
  faults.truncate_p = 0.15;
  faults.corrupt_p = 0.1;
  faults.reorder_p = 0.05;
  faults.seed = 29;
  ReplayOptions replay;
  replay.begin = grace;

  // Fault injection is deterministic per seed, so rebuilding the source
  // replays the identical (mutated) packet sequence for every run.
  auto run_faulty = [&](size_t consumer_batch, size_t score_batch) {
    TraceReplaySource inner(ds.trace, replay);
    FaultInjectingSource src(inner, faults);
    return run_once(proto, src, consumer_batch, score_batch);
  };
  const RunResult baseline = run_faulty(1, 1);
  ASSERT_FALSE(baseline.packets.empty());
  for (size_t sb : kScoreBatches) {
    const RunResult got = run_faulty(64, sb);
    expect_bit_identical(
        got, baseline,
        ("faulty score_batch=" + std::to_string(sb)).c_str());
  }
}

// The primitive underneath the runtime contract: score_packets over one
// packet sequence must give bit-identical scores no matter how the
// sequence is split into calls.
TEST(MicroBatchEquivalence, ScorePacketsSplitInvariant) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.05);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});
  const std::span<const netio::PacketView> live{
      ds.trace.view.data() + grace, ds.trace.view.size() - grace};
  ASSERT_FALSE(live.empty());

  OnlineKitsune whole = proto;
  std::vector<double> whole_scores(live.size(), -1.0);
  whole.score_packets(live, whole_scores.data());

  for (size_t chunk : {size_t{1}, size_t{17}, size_t{64}}) {
    OnlineKitsune split = proto;  // fresh extractor state per chunking
    std::vector<double> split_scores(live.size(), -2.0);
    for (size_t lo = 0; lo < live.size(); lo += chunk) {
      const size_t n = std::min(chunk, live.size() - lo);
      split.score_packets(live.subspan(lo, n), split_scores.data() + lo);
    }
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(whole_scores[i], split_scores[i])
          << "chunk=" << chunk << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace lumen
