// §5.2-style validation: Lumen's pipeline-computed features must match
// independent reference implementations (the paper validates against the
// nprint tool, the Kitsune author code, and smartdet's extraction script; we
// validate against from-first-principles reference computations here).
#include <gtest/gtest.h>

#include <map>

#include "core/algorithms.h"
#include "features/stats.h"
#include "trace/registry.h"

namespace lumen::core {
namespace {

using features::FeatureTable;

const trace::Dataset& p1() {
  static const trace::Dataset ds = trace::make_dataset("P1", 0.15);
  return ds;
}

TEST(Validation, NprintMatchesDirectBitExtraction) {
  auto t = compute_features(*find_algorithm("A02"), p1());  // tcp+udp+ipv4
  ASSERT_TRUE(t.ok());
  const FeatureTable& f = t.value();
  const trace::Dataset& ds = p1();
  // Reference: extract the bits straight from the raw frames.
  for (size_t r = 0; r < std::min<size_t>(f.rows, 300); ++r) {
    const auto& v = ds.trace.view[static_cast<size_t>(f.unit_id[r])];
    const auto& raw = ds.trace.raw[static_cast<size_t>(f.unit_id[r])].data;
    size_t col = 0;
    auto check_layer = [&](int off, size_t bytes, bool present) {
      for (size_t b = 0; b < bytes; ++b) {
        for (int bit = 7; bit >= 0; --bit, ++col) {
          const double expect =
              present ? (((raw[static_cast<size_t>(off) + b] >> bit) & 1) != 0
                             ? 1.0
                             : 0.0)
                      : -1.0;
          ASSERT_EQ(f.at(r, col), expect)
              << "row " << r << " col " << col;
        }
      }
    };
    check_layer(v.l4_off, 20, v.proto == netio::IpProto::kTcp);
    check_layer(v.l4_off, 8, v.proto == netio::IpProto::kUdp);
    check_layer(v.ip_off, 20, v.has_ip);
  }
}

TEST(Validation, KitsuneSrcStatsMatchDirectReplay) {
  auto t = compute_features(*find_algorithm("A06"), p1());
  ASSERT_TRUE(t.ok());
  const FeatureTable& f = t.value();
  const trace::Dataset& ds = p1();
  // Reference: replay the srcIP damped statistic at lambda = 5 (the first
  // lambda; srcIP block starts at column 3 after the MAC block).
  std::map<uint32_t, features::DampedStat> ref;
  for (size_t r = 0; r < f.rows; ++r) {
    const auto& v = ds.trace.view[static_cast<size_t>(f.unit_id[r])];
    if (!v.has_ip) continue;
    auto& st = ref.try_emplace(v.src_ip, 5.0).first->second;
    st.insert(v.wire_len, v.ts);
    ASSERT_NEAR(f.at(r, 3), st.weight(), 1e-9) << "row " << r;
    ASSERT_NEAR(f.at(r, 4), st.mean(), 1e-9) << "row " << r;
    ASSERT_NEAR(f.at(r, 5), st.stddev(), 1e-9) << "row " << r;
  }
}

TEST(Validation, SmartdetEntropyMatchesHandComputation) {
  const trace::Dataset ds = trace::make_dataset("F1", 0.15);
  auto t = compute_features(*find_algorithm("A10"), ds);
  ASSERT_TRUE(t.ok());
  const FeatureTable& f = t.value();
  // Column for sport entropy.
  size_t col = f.cols;
  for (size_t c = 0; c < f.cols; ++c) {
    if (f.col_names[c] == "sport_entropy") col = c;
  }
  ASSERT_LT(col, f.cols);
  // Reference: recompute for the first few flows from the flow module.
  const auto flows = flow::assemble_uniflows(ds.trace);
  ASSERT_EQ(flows.size(), f.rows);
  for (size_t r = 0; r < std::min<size_t>(f.rows, 200); ++r) {
    std::map<uint16_t, double> counts;
    for (uint32_t p : flows[r].pkts) {
      counts[ds.trace.view[p].src_port] += 1.0;
    }
    std::vector<double> c;
    for (auto& [k, n] : counts) c.push_back(n);
    ASSERT_NEAR(f.at(r, col), features::entropy_bits(c), 1e-9) << "flow " << r;
  }
}

TEST(Validation, ZeekFeaturesMatchConnRecords) {
  const trace::Dataset ds = trace::make_dataset("F4", 0.15);
  auto t = compute_features(*find_algorithm("A14"), ds);
  ASSERT_TRUE(t.ok());
  const FeatureTable& f = t.value();
  const auto conns = flow::assemble_connections(ds.trace);
  ASSERT_EQ(f.rows, conns.size());
  for (size_t r = 0; r < f.rows; ++r) {
    const flow::ConnRecord rec = flow::summarize(conns[r], ds.trace);
    EXPECT_NEAR(f.at(r, 0), rec.duration, 1e-9);
    EXPECT_EQ(f.at(r, 1), static_cast<double>(rec.orig_pkts));
    EXPECT_EQ(f.at(r, 2), static_cast<double>(rec.resp_pkts));
    EXPECT_EQ(f.at(r, 3), static_cast<double>(rec.orig_bytes));
    EXPECT_EQ(f.at(r, 4), static_cast<double>(rec.resp_bytes));
  }
}

TEST(Validation, FeatureComputationIsDeterministic) {
  auto a = compute_features(*find_algorithm("A13"), p1().id == "P1"
                                                        ? trace::make_dataset("F0", 0.15)
                                                        : trace::make_dataset("F0", 0.15));
  auto b = compute_features(*find_algorithm("A13"), trace::make_dataset("F0", 0.15));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().data, b.value().data);
}

}  // namespace
}  // namespace lumen::core
