// Ingestion runtime tests: bounded queue overflow policies, packet sources
// (replay, pacing, fault injection), end-to-end runtime runs, and the
// paced-vs-unpaced determinism the gateway story depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "core/ingest.h"
#include "netio/builder.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace lumen {
namespace {

using core::BoundedPacketQueue;
using core::CollectingSink;
using core::FnScorer;
using core::IngestRuntime;
using core::IngestStats;
using core::OverflowPolicy;
using netio::Bytes;
using netio::FaultInjectingSource;
using netio::FaultOptions;
using netio::MacAddr;
using netio::RawPacket;
using netio::ReplayOptions;
using netio::SourcePacket;
using netio::Trace;
using netio::TraceReplaySource;

const MacAddr kMacA{2, 0, 0, 0, 0, 1};
const MacAddr kMacB{2, 0, 0, 0, 0, 2};

// n valid TCP packets, 10 ms apart, payload size cycling 0..6.
Trace make_trace(size_t n) {
  Trace t;
  for (size_t i = 0; i < n; ++i) {
    netio::TcpOpts tcp;
    tcp.seq = static_cast<uint32_t>(i);
    t.raw.push_back(RawPacket{
        100.0 + 0.01 * static_cast<double>(i),
        netio::build_tcp(kMacA, kMacB, 0x0a000001, 0x0a000002, 1234, 80, tcp,
                         Bytes(i % 7, 0x61))});
  }
  netio::parse_trace(t);
  return t;
}

SourcePacket sp(uint32_t i) {
  SourcePacket p;
  p.capture_index = i;
  p.pkt.ts = i;
  return p;
}

TEST(BoundedQueue, BlocksUntilConsumerFrees) {
  BoundedPacketQueue q(2, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(sp(0)));
  ASSERT_TRUE(q.push(sp(1)));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(sp(2)));  // blocks until a pop frees a slot
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  SourcePacket out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.capture_index, 0u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_EQ(q.high_water(), 2u);
}

TEST(BoundedQueue, DropOldestEvictsAndCounts) {
  BoundedPacketQueue q(2, OverflowPolicy::kDropOldest);
  ASSERT_TRUE(q.push(sp(0)));
  ASSERT_TRUE(q.push(sp(1)));
  ASSERT_TRUE(q.push(sp(2)));  // evicts 0
  ASSERT_TRUE(q.push(sp(3)));  // evicts 1
  EXPECT_EQ(q.dropped(), 2u);

  SourcePacket out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.capture_index, 2u);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.capture_index, 3u);
}

TEST(BoundedQueue, LateAttachedMirrorCatchesUpOnPreAttachDrops) {
  // Regression: drops that happened before attach_telemetry used to be
  // lost from the mirror forever — the counter and dropped() disagreed for
  // the rest of the queue's life. Attachment now folds them in, and the
  // shared locked bookkeeping keeps the two in lockstep afterwards.
  BoundedPacketQueue q(2, OverflowPolicy::kDropOldest);
  for (uint32_t i = 0; i < 5; ++i) ASSERT_TRUE(q.push(sp(i)));
  EXPECT_EQ(q.dropped(), 3u);

  telemetry::Registry reg;
  telemetry::Counter& dropped = reg.counter("q.dropped");
  q.attach_telemetry(nullptr, nullptr, &dropped);
  EXPECT_EQ(dropped.value(), 3u);  // pre-attach drops folded in

  ASSERT_TRUE(q.push(sp(5)));  // evicts one more
  EXPECT_EQ(q.dropped(), 4u);
  EXPECT_EQ(dropped.value(), 4u);  // mirror moved with the drop decision
}

TEST(BoundedQueue, DropMirrorNeverRunsAheadUnderConcurrentPops) {
  // The counter bump shares the drop's critical section, so a scraper that
  // samples the mirror first and the authoritative count second must never
  // see mirror > dropped() — the one-batch divergence this ordering
  // forbids. Hammered from three sides to give TSan something to chew on.
  BoundedPacketQueue q(4, OverflowPolicy::kDropOldest);
  telemetry::Registry reg;
  telemetry::Counter& mirror = reg.counter("q.dropped");
  q.attach_telemetry(nullptr, nullptr, &mirror);

  std::atomic<bool> stop{false};
  std::atomic<bool> ordered{true};
  std::thread scraper([&] {
    while (!stop.load()) {
      const uint64_t mirrored = mirror.value();
      const uint64_t authoritative = q.dropped();  // sampled after
      if (mirrored > authoritative) ordered.store(false);
    }
  });
  std::thread consumer([&] {
    std::vector<SourcePacket> batch;
    for (int i = 0; i < 200; ++i) q.pop_batch(batch, 3);
  });
  for (uint32_t i = 0; i < 4000; ++i) ASSERT_TRUE(q.push(sp(i)));
  stop.store(true);
  scraper.join();
  q.close();
  consumer.join();
  EXPECT_TRUE(ordered.load());
  EXPECT_GT(q.dropped(), 0u);
  EXPECT_EQ(mirror.value(), q.dropped());
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedPacketQueue q(4, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(sp(0)));
  q.close();
  EXPECT_FALSE(q.push(sp(1)));  // closed: no new packets
  SourcePacket out;
  ASSERT_TRUE(q.pop(out));  // buffered packet still poppable
  EXPECT_FALSE(q.pop(out));
}

TEST(Source, TraceReplayYieldsAllPacketsInOrder) {
  Trace t = make_trace(10);
  TraceReplaySource src(t);
  SourcePacket p;
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(src.next(p));
    EXPECT_EQ(p.capture_index, i);
    EXPECT_EQ(p.pkt.data, t.raw[i].data);
  }
  EXPECT_FALSE(src.next(p));
  ASSERT_TRUE(src.reset());
  ASSERT_TRUE(src.next(p));
  EXPECT_EQ(p.capture_index, 0u);
}

TEST(Source, TraceReplayHonorsRange) {
  Trace t = make_trace(10);
  ReplayOptions opts;
  opts.begin = 4;
  opts.end = 7;
  TraceReplaySource src(t, opts);
  SourcePacket p;
  size_t n = 0;
  uint32_t first = 0;
  while (src.next(p)) {
    if (n == 0) first = p.capture_index;
    ++n;
  }
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(first, 4u);
}

TEST(Source, ReplayKeepsOriginalCaptureIndexAfterSkips) {
  Trace t = make_trace(5);
  // Wreck packet 2 so parse_trace drops it, then replay the compacted trace.
  t.raw[2].data.resize(6);
  ASSERT_EQ(netio::parse_trace(t), 1u);
  ASSERT_EQ(t.raw.size(), 4u);
  TraceReplaySource src(t);
  SourcePacket p;
  std::vector<uint32_t> seen;
  while (src.next(p)) seen.push_back(p.capture_index);
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 1, 3, 4}));
}

TEST(Source, FaultInjectionIsDeterministicPerSeed) {
  Trace t = make_trace(200);
  FaultOptions faults;
  faults.truncate_p = 0.2;
  faults.corrupt_p = 0.2;
  faults.reorder_p = 0.1;
  faults.seed = 42;

  auto collect = [&] {
    TraceReplaySource inner(t);
    FaultInjectingSource src(inner, faults);
    std::vector<SourcePacket> out;
    SourcePacket p;
    while (src.next(p)) out.push_back(p);
    return out;
  };
  const auto a = collect();
  const auto b = collect();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), t.raw.size());  // reorder never loses packets
  size_t mutated = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].capture_index, b[i].capture_index);
    EXPECT_EQ(a[i].pkt.data, b[i].pkt.data);
    if (a[i].pkt.data != t.raw[a[i].capture_index].data) ++mutated;
  }
  EXPECT_GT(mutated, 0u);
}

TEST(Source, FaultSourceResetReplaysIdentically) {
  Trace t = make_trace(50);
  TraceReplaySource inner(t);
  FaultOptions faults;
  faults.truncate_p = 0.3;
  faults.seed = 7;
  FaultInjectingSource src(inner, faults);
  std::vector<Bytes> first;
  SourcePacket p;
  while (src.next(p)) first.push_back(p.pkt.data);
  ASSERT_TRUE(src.reset());
  size_t i = 0;
  while (src.next(p)) {
    ASSERT_LT(i, first.size());
    EXPECT_EQ(p.pkt.data, first[i++]);
  }
  EXPECT_EQ(i, first.size());
}

// A trivial deterministic scorer: alert on any payload-carrying packet.
IngestRuntime::Options one_consumer() {
  IngestRuntime::Options o;
  o.consumers = 1;
  return o;
}

core::ScorerFactory payload_scorer() {
  return [](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView& v) {
          return static_cast<double>(v.payload_len);
        },
        0.5);
  };
}

TEST(Runtime, ScoresEveryPacketAndCountsAlerts) {
  Trace t = make_trace(21);  // payload sizes cycle 0..6: 18 of 21 non-empty
  TraceReplaySource src(t);
  CollectingSink sink;
  IngestRuntime rt(one_consumer(), payload_scorer(), &sink);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().enqueued, 21u);
  EXPECT_EQ(stats.value().scored, 21u);
  EXPECT_EQ(stats.value().parse_skipped, 0u);
  EXPECT_EQ(stats.value().dropped, 0u);
  EXPECT_EQ(stats.value().alerted, 18u);
  EXPECT_EQ(sink.alerts().size(), 18u);
  EXPECT_GE(stats.value().queue_high_water, 1u);
}

TEST(Runtime, MultiConsumerConservesPackets) {
  Trace t = make_trace(400);
  for (size_t consumers : {2u, 4u}) {
    TraceReplaySource src(t);
    IngestRuntime::Options opts;
    opts.consumers = consumers;
    CollectingSink sink;
    IngestRuntime rt(opts, payload_scorer(), &sink);
    auto stats = rt.run(src);
    ASSERT_TRUE(stats.ok());
    const IngestStats& s = stats.value();
    EXPECT_EQ(s.enqueued, 400u);
    EXPECT_EQ(s.scored + s.parse_skipped, s.enqueued - s.dropped);
    // The scorer is stateless, so alerts are partition-independent.
    EXPECT_EQ(s.alerted, 400u * 6 / 7);
  }
}

TEST(Runtime, FaultySourceSkipsUnparseableKeepsRest) {
  Trace t = make_trace(300);
  TraceReplaySource inner(t);
  FaultOptions faults;
  faults.truncate_p = 0.3;
  faults.seed = 11;
  FaultInjectingSource src(inner, faults);
  CollectingSink sink;
  IngestRuntime rt(one_consumer(), payload_scorer(), &sink);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  const IngestStats& s = stats.value();
  EXPECT_EQ(s.enqueued, 300u);
  EXPECT_GT(s.parse_skipped, 0u);
  EXPECT_EQ(s.scored + s.parse_skipped, 300u);
}

TEST(Runtime, DropOldestUnderSlowConsumerCountsDrops) {
  Trace t = make_trace(200);
  TraceReplaySource src(t);
  IngestRuntime::Options opts;
  opts.consumers = 1;
  opts.queue_capacity = 4;
  opts.overflow = OverflowPolicy::kDropOldest;
  // A slow scorer guarantees the tiny queue overflows.
  auto slow = [](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView&) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return 0.0;
        },
        1.0);
  };
  IngestRuntime rt(opts, slow, nullptr);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  const IngestStats& s = stats.value();
  EXPECT_GT(s.dropped, 0u);
  EXPECT_EQ(s.scored, s.enqueued - s.dropped);
  EXPECT_LE(s.queue_high_water, 4u);
}

TEST(Runtime, PacedAndUnpacedReplayAlertIdentically) {
  Trace t = make_trace(150);
  auto run_with = [&](bool pace) {
    ReplayOptions opts;
    opts.pace = pace;
    opts.speed = 200.0;  // 10 ms gaps replay as 50 µs
    opts.max_sleep = 0.001;
    TraceReplaySource src(t, opts);
    CollectingSink sink;
    IngestRuntime rt(one_consumer(), payload_scorer(), &sink);
    auto stats = rt.run(src);
    EXPECT_TRUE(stats.ok());
    return sink.alerts().size();
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

TEST(Runtime, KitsuneScorerDetectsOnTheStream) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.1);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  core::OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});

  ReplayOptions replay;
  replay.begin = grace;
  TraceReplaySource src(ds.trace, replay);
  CollectingSink sink;
  IngestRuntime rt(
      one_consumer(),
      [&proto](size_t) { return std::make_unique<core::KitsuneScorer>(proto); },
      &sink);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().scored, ds.trace.view.size() - grace);
  // The detector must fire on the Mirai segment of the capture.
  EXPECT_GT(stats.value().alerted, 0u);
  for (const core::Alert& a : sink.alerts()) {
    EXPECT_GT(a.score, a.threshold);
    EXPECT_GE(a.capture_index, grace);
    EXPECT_LT(a.capture_index, ds.trace.view.size());
  }
}

TEST(Runtime, RequestStopWindsDownGracefully) {
  Trace t = make_trace(5000);
  TraceReplaySource src(t);
  IngestRuntime::Options opts;
  opts.consumers = 2;
  opts.queue_capacity = 8;
  IngestRuntime rt(opts, payload_scorer(), nullptr);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    rt.request_stop();
  });
  auto stats = rt.run(src);
  stopper.join();
  ASSERT_TRUE(stats.ok());
  // Everything accepted was accounted for, even though we stopped early.
  const IngestStats& s = stats.value();
  EXPECT_EQ(s.scored + s.parse_skipped, s.enqueued - s.dropped);
}

TEST(BoundedQueue, PopBatchDrainsUpToMax) {
  BoundedPacketQueue q(8, OverflowPolicy::kBlock);
  for (uint32_t i = 0; i < 5; ++i) ASSERT_TRUE(q.push(sp(i)));
  std::vector<SourcePacket> batch;
  EXPECT_EQ(q.pop_batch(batch, 3), 3u);
  ASSERT_EQ(batch.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) EXPECT_EQ(batch[i].capture_index, i);
  EXPECT_EQ(q.pop_batch(batch, 100), 2u);  // capped by queue content
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].capture_index, 3u);
  EXPECT_EQ(batch[1].capture_index, 4u);
  q.close();
  EXPECT_EQ(q.pop_batch(batch, 4), 0u);  // closed and drained
  EXPECT_TRUE(batch.empty());
}

TEST(BoundedQueue, PopBatchDrainsBufferedAfterClose) {
  BoundedPacketQueue q(8, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(sp(0)));
  ASSERT_TRUE(q.push(sp(1)));
  q.close();
  std::vector<SourcePacket> batch;
  EXPECT_EQ(q.pop_batch(batch, 8), 2u);  // buffered packets still poppable
  EXPECT_EQ(q.pop_batch(batch, 8), 0u);
}

TEST(BoundedQueue, PopBatchFreesBlockedProducer) {
  BoundedPacketQueue q(2, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(sp(0)));
  ASSERT_TRUE(q.push(sp(1)));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(sp(2)));  // blocks until pop_batch frees slots
    pushed.store(true);
  });
  std::vector<SourcePacket> batch;
  EXPECT_EQ(q.pop_batch(batch, 2), 2u);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

// The exact alert set must not depend on the batching knob: batch size
// only changes lock amortization, never which packets alert.
TEST(Runtime, BatchedAlertFlushPreservesAlertSet) {
  Trace t = make_trace(300);

  // Ground truth: score the parsed views directly, packet at a time.
  std::vector<uint32_t> expected;
  for (const auto& v : t.view) {
    if (v.payload_len > 0.5) expected.push_back(v.index);
  }

  for (size_t batch : {1u, 7u, 64u, 1024u}) {
    TraceReplaySource src(t);
    IngestRuntime::Options opts;
    opts.consumers = 1;
    opts.consumer_batch = batch;
    CollectingSink sink;
    IngestRuntime rt(opts, payload_scorer(), &sink);
    auto stats = rt.run(src);
    ASSERT_TRUE(stats.ok());
    std::vector<uint32_t> got;
    for (const core::Alert& a : sink.alerts()) got.push_back(a.capture_index);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "consumer_batch=" << batch;
    EXPECT_EQ(stats.value().alerted, expected.size());
    EXPECT_EQ(stats.value().scored, 300u);
  }
}

TEST(Runtime, MultiConsumerBatchedFlushConservesAlerts) {
  Trace t = make_trace(500);
  size_t expected_alerts = 0;
  for (const auto& v : t.view) expected_alerts += v.payload_len > 0 ? 1 : 0;
  for (size_t consumers : {2u, 4u}) {
    TraceReplaySource src(t);
    IngestRuntime::Options opts;
    opts.consumers = consumers;
    opts.consumer_batch = 16;
    CollectingSink sink;
    IngestRuntime rt(opts, payload_scorer(), &sink);
    auto stats = rt.run(src);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().scored, 500u);
    EXPECT_EQ(sink.alerts().size(), stats.value().alerted);
    EXPECT_EQ(stats.value().alerted, expected_alerts);
  }
}

// Stress the queue's telemetry mirrors: producers racing drop-oldest
// eviction against batched consumers must never lose a drop or high-water
// update, and the attached instruments must agree with the queue's own
// accounting once everything drains. Run under tools/check_tsan.sh to get
// the race coverage this test exists for.
TEST(BoundedQueue, TelemetryMirrorsStayExactUnderStress) {
  telemetry::Registry reg;
  telemetry::Gauge& depth = reg.gauge("q.depth");
  telemetry::Gauge& high_water = reg.gauge("q.high_water");
  telemetry::Counter& dropped = reg.counter("q.dropped");
  BoundedPacketQueue q(8, OverflowPolicy::kDropOldest);
  q.attach_telemetry(&depth, &high_water, &dropped);

  constexpr size_t kProducers = 3, kConsumers = 3;
  constexpr uint32_t kPerProducer = 4000;
  std::atomic<uint64_t> popped{0};
  std::vector<std::thread> producers, consumers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (uint32_t i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(sp(i)));  // drop-oldest: push never fails
      }
    });
  }
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &popped] {
      std::vector<SourcePacket> batch;
      while (q.pop_batch(batch, 16) > 0) {
        popped.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : consumers) t.join();

  const uint64_t pushed = kProducers * kPerProducer;
  EXPECT_EQ(popped.load() + q.dropped(), pushed);
  EXPECT_EQ(dropped.value(), q.dropped());
  EXPECT_DOUBLE_EQ(high_water.value(), static_cast<double>(q.high_water()));
  EXPECT_LE(q.high_water(), 8u);
  EXPECT_GE(q.high_water(), 1u);
  EXPECT_DOUBLE_EQ(depth.value(), 0.0);  // fully drained
}

// The IngestStats façade must read back exactly what the registry holds:
// same run, same numbers, whether consumed through stats() or a Snapshot.
TEST(Runtime, StatsRoundTripThroughTelemetrySnapshot) {
  Trace t = make_trace(210);
  TraceReplaySource src(t);
  telemetry::Registry reg;
  IngestRuntime::Options opts;
  opts.consumers = 2;
  opts.consumer_batch = 16;
  opts.registry = &reg;
  opts.instrument_prefix = "t.";
  CollectingSink sink;
  IngestRuntime rt(opts, payload_scorer(), &sink);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  const IngestStats& s = stats.value();
  EXPECT_EQ(s.enqueued, 210u);
  EXPECT_EQ(s.scored, 210u);

  const telemetry::Snapshot snap = rt.registry().snapshot();
  EXPECT_EQ(snap.counter_value("t.enqueued"), s.enqueued);
  EXPECT_EQ(snap.counter_value("t.dropped"), s.dropped);
  EXPECT_EQ(snap.counter_value("t.parse_skipped"), s.parse_skipped);
  EXPECT_EQ(snap.counter_value("t.scored"), s.scored);
  EXPECT_EQ(snap.counter_value("t.alerted"), s.alerted);
  EXPECT_EQ(static_cast<size_t>(snap.gauge_value("t.queue.high_water")),
            s.queue_high_water);
  // Per-stage latency histograms saw the run (one sample per batch).
  for (const char* name :
       {"t.stage.extract_ns", "t.stage.score_ns", "t.stage.flush_ns"}) {
    const telemetry::HistogramSample* h = snap.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
  }
}

// Consecutive runs on one runtime must each report per-run numbers even
// though the underlying registry counters are cumulative.
TEST(Runtime, StatsAreDeltasPerRun) {
  Trace t = make_trace(140);
  telemetry::Registry reg;
  IngestRuntime::Options opts;
  opts.registry = &reg;
  IngestRuntime rt(opts, payload_scorer(), nullptr);
  for (int run = 0; run < 2; ++run) {
    TraceReplaySource src(t);
    auto stats = rt.run(src);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().enqueued, 140u);
    EXPECT_EQ(stats.value().scored, 140u);
  }
  // The registry itself is cumulative across both runs.
  EXPECT_EQ(reg.snapshot().counter_value("ingest.scored"), 280u);
}

// Options.registry == nullptr (the uninstrumented baseline) must still
// produce full, correct stats through the runtime-local registry.
TEST(Runtime, NullRegistryStillAccounts) {
  Trace t = make_trace(63);
  TraceReplaySource src(t);
  IngestRuntime::Options opts;
  opts.registry = nullptr;
  opts.queue_capacity = 4;
  opts.overflow = OverflowPolicy::kDropOldest;
  IngestRuntime rt(opts, payload_scorer(), nullptr);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  const IngestStats& s = stats.value();
  EXPECT_EQ(s.enqueued, 63u);
  EXPECT_EQ(s.scored + s.parse_skipped, s.enqueued - s.dropped);
  EXPECT_GE(s.queue_high_water, 1u);
  // Extended instruments are skipped in this mode.
  EXPECT_EQ(rt.registry().snapshot().find_histogram("ingest.stage.extract_ns"),
            nullptr);
}

// Regression: back-to-back runs against one shared registry used to leak
// the previous run's queue.high_water gauge (and with it the stats façade's
// queue numbers) into the next run, because gauges — unlike counters — are
// absolute and were never re-zeroed when a queue re-attached. Force drops
// in every run and check each run's accounting closes on its own numbers.
TEST(Runtime, TwoRunsOneRegistryKeepDropAccountingExact) {
  Trace t = make_trace(160);
  telemetry::Registry reg;
  IngestRuntime::Options opts;
  opts.consumers = 1;
  opts.queue_capacity = 4;
  opts.overflow = OverflowPolicy::kDropOldest;
  opts.registry = &reg;
  opts.instrument_prefix = "shared.";
  auto slow = [](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView&) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          return 0.0;
        },
        1.0);
  };

  // Same runtime, reused; then a second runtime on the same registry and
  // prefix (the "fleet of gateways sharing one exporter" shape).
  uint64_t total_enqueued = 0, total_dropped = 0, total_scored = 0,
           total_skipped = 0;
  IngestStats last{};
  IngestRuntime reused(opts, slow, nullptr);
  for (int run = 0; run < 2; ++run) {
    TraceReplaySource src(t);
    auto stats = reused.run(src);
    ASSERT_TRUE(stats.ok());
    const IngestStats& s = stats.value();
    EXPECT_EQ(s.enqueued, 160u) << "run " << run;
    EXPECT_EQ(s.scored + s.parse_skipped + s.dropped, s.enqueued)
        << "run " << run;
    EXPECT_GT(s.dropped, 0u) << "run " << run;  // the tiny queue overflowed
    EXPECT_LE(s.queue_high_water, 4u) << "run " << run;
    total_enqueued += s.enqueued;
    total_dropped += s.dropped;
    total_scored += s.scored;
    total_skipped += s.parse_skipped;
    last = s;
  }
  {
    IngestRuntime second(opts, slow, nullptr);
    TraceReplaySource src(t);
    auto stats = second.run(src);
    ASSERT_TRUE(stats.ok());
    const IngestStats& s = stats.value();
    EXPECT_EQ(s.scored + s.parse_skipped + s.dropped, s.enqueued);
    EXPECT_GT(s.dropped, 0u);
    total_enqueued += s.enqueued;
    total_dropped += s.dropped;
    total_scored += s.scored;
    total_skipped += s.parse_skipped;
    last = s;
  }

  // The shared registry accumulated across all three runs; the gauge is
  // absolute and must reflect only the LAST run (the regression fixed).
  const telemetry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("shared.enqueued"), total_enqueued);
  EXPECT_EQ(snap.counter_value("shared.dropped"), total_dropped);
  EXPECT_EQ(snap.counter_value("shared.scored"), total_scored);
  EXPECT_EQ(snap.counter_value("shared.parse_skipped"), total_skipped);
  EXPECT_EQ(static_cast<size_t>(snap.gauge_value("shared.queue.high_water")),
            last.queue_high_water);
  EXPECT_DOUBLE_EQ(snap.gauge_value("shared.queue.depth"), 0.0);
}

TEST(Runtime, ConsumerExceptionPropagatesToCaller) {
  Trace t = make_trace(50);
  TraceReplaySource src(t);
  auto throwing = [](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView&) -> double {
          throw std::runtime_error("scorer blew up");
        },
        1.0);
  };
  IngestRuntime rt(one_consumer(), throwing, nullptr);
  EXPECT_THROW((void)rt.run(src), std::runtime_error);
}

}  // namespace
}  // namespace lumen
