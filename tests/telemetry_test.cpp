// Tests for the unified telemetry subsystem: instrument exactness under
// concurrency, span nesting, snapshot consistency while writers are live,
// and golden renderings of both exposition formats (Prometheus text and the
// BENCH_*.json house style).
#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace lumen::telemetry {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kIters = 50000;

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("t.counter");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (size_t i = 0; i < kIters; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIters);
  EXPECT_EQ(reg.snapshot().counter_value("t.counter"), kThreads * kIters);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, SameNameReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("dup");
  Counter& b = reg.counter("dup");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(GaugeTest, SetAddMax) {
  Registry reg;
  Gauge& g = reg.gauge("t.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.update_max(3.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.update_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(GaugeTest, ConcurrentAddSumsExactly) {
  Registry reg;
  Gauge& g = reg.gauge("t.gauge");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (size_t i = 0; i < kIters; ++i) g.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kIters));
}

TEST(GaugeTest, ConcurrentMaxIsGlobalMax) {
  Registry reg;
  Gauge& g = reg.gauge("t.max");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (size_t i = 0; i < kIters; ++i) {
        g.update_max(static_cast<double>(t * kIters + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kIters - 1));
}

TEST(HistogramTest, BucketPlacementAndTotals) {
  Registry reg;
  Histogram& h = reg.histogram("t.hist", {1.0, 2.0, 4.0});
  h.record(0.5);  // <= 1
  h.record(1.0);  // <= 1 (bounds are inclusive upper bounds)
  h.record(1.5);  // <= 2
  h.record(8.0);  // +Inf
  const std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 11.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, FirstCallFixesBounds) {
  Registry reg;
  Histogram& a = reg.histogram("h", {1.0, 2.0});
  Histogram& b = reg.histogram("h", {99.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  Registry reg;
  Histogram& h = reg.histogram("t.hist", {0.0, 1.0, 2.0});
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (size_t i = 0; i < kIters; ++i) {
        h.record(static_cast<double>(i % 4));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kIters);
  // Each thread records kIters/4 of each value 0,1,2,3 -> sum = 6 * kIters/4.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kIters / 4 * 6));
  const std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  for (const uint64_t c : counts) EXPECT_EQ(c, kThreads * kIters / 4);
}

TEST(SnapshotTest, ConsistentWhileWritersLive) {
  Registry reg;
  Counter& c = reg.counter("live.counter");
  Histogram& h = reg.histogram("live.hist", {1.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1);
        h.record(0.5);
        Span span(&reg, "live.span");
        span.stop();
      }
    });
  }
  // Counter reads must be monotonic across snapshots taken mid-write.
  uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const Snapshot snap = reg.snapshot();
    const uint64_t now = snap.counter_value("live.counter");
    EXPECT_GE(now, prev);
    prev = now;
    const HistogramSample* hs = snap.find_histogram("live.hist");
    ASSERT_NE(hs, nullptr);
    uint64_t bucket_total = 0;
    for (const uint64_t b : hs->counts) bucket_total += b;
    EXPECT_EQ(bucket_total, hs->count);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(reg.snapshot().counter_value("live.counter"), c.value());
}

TEST(SpanTest, NestingParentDepthAndAnnotations) {
  Registry reg;
  uint64_t outer_id = 0, inner_id = 0;
  {
    Span outer(&reg, "outer", "top level");
    outer_id = outer.id();
    {
      Span inner(&reg, "inner");
      inner_id = inner.id();
      inner.set_value(42);
      inner.stop();
    }
    outer.set_flag(true);
  }
  EXPECT_NE(outer_id, 0u);
  EXPECT_NE(inner_id, 0u);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);  // completion order: inner first
  const SpanRecord* inner = snap.find_span(inner_id);
  const SpanRecord* outer = snap.find_span(outer_id);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(snap.spans[0].id, inner_id);
  EXPECT_EQ(inner->parent, outer_id);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(inner->value, 42u);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(outer->detail, "top level");
  EXPECT_TRUE(outer->flag);
  EXPECT_GE(outer->seconds, inner->seconds);
  EXPECT_GE(inner->start, outer->start);
}

TEST(SpanTest, RegistriesNestIndependently) {
  Registry a, b;
  {
    Span outer(&a, "a.outer");
    Span foreign(&b, "b.span");  // different registry: no parent link
    Span inner(&a, "a.inner");
    EXPECT_NE(outer.id(), 0u);
    inner.stop();
    foreign.stop();
  }
  const Snapshot sa = a.snapshot();
  const Snapshot sb = b.snapshot();
  ASSERT_EQ(sa.spans.size(), 2u);
  ASSERT_EQ(sb.spans.size(), 1u);
  EXPECT_EQ(sb.spans[0].parent, 0u);
  EXPECT_EQ(sb.spans[0].depth, 0u);
  // a.inner still parents to a.outer across the foreign span.
  EXPECT_EQ(sa.spans[0].name, "a.inner");
  EXPECT_EQ(sa.spans[0].depth, 1u);
}

TEST(SpanTest, NullRegistryIsInert) {
  Span span(nullptr, "inert");
  span.set_value(1);
  span.stop();
  EXPECT_EQ(span.id(), 0u);
  EXPECT_DOUBLE_EQ(span.seconds(), 0.0);
}

TEST(SpanTest, SetSpanFlagPatchesRecordedSpan) {
  Registry reg;
  uint64_t id = 0;
  {
    Span span(&reg, "patched");
    id = span.id();
  }
  EXPECT_FALSE(reg.snapshot().find_span(id)->flag);
  reg.set_span_flag(id, true);
  EXPECT_TRUE(reg.snapshot().find_span(id)->flag);
}

TEST(SpanTest, LogDropsOldestBeyondCapacity) {
  Registry reg;
  const size_t extra = 10;
  for (size_t i = 0; i < kSpanLogCapacity + extra; ++i) {
    Span span(&reg, "s");
    span.stop();
  }
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.spans.size(), kSpanLogCapacity);
  // Oldest `extra` spans (ids 1..extra) were dropped; order is preserved.
  EXPECT_EQ(snap.spans.front().id, extra + 1);
  EXPECT_EQ(snap.spans.back().id, kSpanLogCapacity + extra);
  for (size_t i = 1; i < snap.spans.size(); ++i) {
    EXPECT_EQ(snap.spans[i].id, snap.spans[i - 1].id + 1);
  }
}

TEST(RegistryTest, ResetZeroesButKeepsReferences) {
  Registry reg;
  Counter& c = reg.counter("r.counter");
  Gauge& g = reg.gauge("r.gauge");
  Histogram& h = reg.histogram("r.hist", {1.0});
  c.add(5);
  g.set(3.0);
  h.record(0.5);
  {
    Span span(&reg, "r.span");
  }
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(reg.snapshot().spans.empty());
  c.add(1);  // references stay live after reset
  EXPECT_EQ(reg.snapshot().counter_value("r.counter"), 1u);
}

TEST(SnapshotTest, LookupsMissGracefully) {
  Registry reg;
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("absent"), nullptr);
  EXPECT_EQ(snap.find_gauge("absent"), nullptr);
  EXPECT_EQ(snap.find_histogram("absent"), nullptr);
  EXPECT_EQ(snap.find_span(7), nullptr);
  EXPECT_EQ(snap.counter_value("absent", 9), 9u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("absent", 1.5), 1.5);
}

/// Fills a registry with one of each instrument at known values; no spans
/// (span timings are non-deterministic, so the golden tests exclude them).
void fill_demo(Registry& reg) {
  reg.counter("demo.count").add(3);
  reg.gauge("demo.depth").set(2.5);
  Histogram& h = reg.histogram("demo.lat", {1.0, 2.0});
  h.record(0.5);
  h.record(1.5);
  h.record(5.0);
}

TEST(ExpositionTest, PrometheusGolden) {
  Registry reg;
  fill_demo(reg);
  const std::string expected =
      "# TYPE lumen_demo_count counter\n"
      "lumen_demo_count 3\n"
      "# TYPE lumen_demo_depth gauge\n"
      "lumen_demo_depth 2.5\n"
      "# TYPE lumen_demo_lat histogram\n"
      "lumen_demo_lat_bucket{le=\"1\"} 1\n"
      "lumen_demo_lat_bucket{le=\"2\"} 2\n"
      "lumen_demo_lat_bucket{le=\"+Inf\"} 3\n"
      "lumen_demo_lat_sum 7\n"
      "lumen_demo_lat_count 3\n";
  EXPECT_EQ(reg.snapshot().to_prometheus(), expected);
}

TEST(ExpositionTest, JsonGolden) {
  Registry reg;
  fill_demo(reg);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"demo.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"demo.depth\": 2.5\n"
      "  },\n"
      "  \"histograms\": [\n"
      "    {\"name\": \"demo.lat\", \"bounds\": [1, 2], "
      "\"counts\": [1, 1, 1], \"sum\": 7, \"count\": 3}\n"
      "  ],\n"
      "  \"spans\": []\n"
      "}\n";
  EXPECT_EQ(reg.snapshot().to_json(), expected);
}

TEST(JsonWriterTest, GoldenBenchShapedDocument) {
  // The exact document an fprintf-based bench emitter would have produced;
  // the Writer must reproduce it byte for byte.
  json::Writer w;
  w.kv_str("benchmark", "demo");
  w.kv_u64("rows", 3);
  w.kv_f("seconds", 0.25, 4);
  w.begin_array("items");
  w.begin_inline_object();
  w.kv_str("name", "a");
  w.kv_f("rate", 1.5, 1);
  w.end();
  w.begin_inline_object();
  w.kv_str("name", "b");
  w.kv_f("rate", 4.0, 1);
  w.end();
  w.end();
  w.begin_inline_object("totals");
  w.kv_u64("ok", 2);
  w.kv_u64("failed", 0);
  w.end();
  w.kv_bool("deterministic", true);
  const std::string expected =
      "{\n"
      "  \"benchmark\": \"demo\",\n"
      "  \"rows\": 3,\n"
      "  \"seconds\": 0.2500,\n"
      "  \"items\": [\n"
      "    {\"name\": \"a\", \"rate\": 1.5},\n"
      "    {\"name\": \"b\", \"rate\": 4.0}\n"
      "  ],\n"
      "  \"totals\": {\"ok\": 2, \"failed\": 0},\n"
      "  \"deterministic\": true\n"
      "}\n";
  EXPECT_EQ(w.str(), expected);
}

TEST(JsonWriterTest, EscapesAndNumberForms) {
  EXPECT_EQ(json::Writer::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json::Writer::format_number(7.0), "7");
  EXPECT_EQ(json::Writer::format_number(-3.0), "-3");
  EXPECT_EQ(json::Writer::format_number(2.5), "2.5");
  EXPECT_EQ(json::Writer::format_number(0.0), "0");
  json::Writer w;
  w.kv_num("int_like", 12.0);
  w.kv_num("frac", 0.125);
  EXPECT_EQ(w.str(),
            "{\n  \"int_like\": 12,\n  \"frac\": 0.125\n}\n");
}

TEST(ExpositionTest, PrometheusSanitizesMetricNames) {
  Registry reg;
  reg.counter("ingest.stage-1/drops").add(1);
  const std::string out = reg.snapshot().to_prometheus();
  EXPECT_NE(out.find("lumen_ingest_stage_1_drops 1"), std::string::npos);
}

}  // namespace
}  // namespace lumen::telemetry
