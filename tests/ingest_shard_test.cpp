// Flow-sharded ingestion: golden equivalence, routing invariants, drop
// accounting, per-shard telemetry, hot-swap, and Options normalization.
//
// The equivalence anchor mirrors PR 6's ingest_batch_equiv_test, adapted
// to what sharding can actually promise. FlowShardRouter::shard_of is a
// pure function of (frame bytes, link, shard count), so the N-shard
// partition of any packet sequence is deterministic — and a concurrent
// N-shard run must be bit-identical to scoring each shard's subsequence
// sequentially with a fresh detector. That reference is scheduling-free:
// it pins that concurrency, ring capacity, and batching add zero
// divergence on top of the (deterministic) partition itself. Additionally
// shards=1 must be bit-identical to the classic single-queue one-consumer
// run: the router routes everything to shard 0 in arrival order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/telemetry.h"
#include "core/ingest.h"
#include "core/stream.h"
#include "netio/builder.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace lumen {
namespace {

using core::CollectingSink;
using core::FlowShardRouter;
using core::FnScorer;
using core::IngestRuntime;
using core::IngestStats;
using core::KitsuneScorer;
using core::OnlineKitsune;
using core::OverflowPolicy;
using netio::Bytes;
using netio::FaultInjectingSource;
using netio::FaultOptions;
using netio::MacAddr;
using netio::RawPacket;
using netio::ReplayOptions;
using netio::SourcePacket;
using netio::Trace;
using netio::TraceReplaySource;

const MacAddr kMacA{2, 0, 0, 0, 0, 1};
const MacAddr kMacB{2, 0, 0, 0, 0, 2};

class RecordingSink : public core::AlertSink {
 public:
  void on_alert(const core::Alert& alert) override {
    alerts.push_back(alert.capture_index);
  }
  void on_packet(const netio::PacketView& view, double score,
                 bool /*alerted*/) override {
    packets.emplace_back(view.index, score);
  }

  std::vector<uint32_t> alerts;
  std::vector<std::pair<uint32_t, double>> packets;
};

struct RunResult {
  std::vector<uint32_t> alerts;
  std::vector<std::pair<uint32_t, double>> packets;
};

/// Canonical order for comparing runs whose delivery order interleaves
/// shards nondeterministically: capture indices are unique, so sorting by
/// (index, score) is a total order that still compares scores bit-exactly.
void canonicalize(RunResult& r) {
  std::sort(r.packets.begin(), r.packets.end());
  std::sort(r.alerts.begin(), r.alerts.end());
}

/// The scheduling-free reference: materialize the stream, partition it
/// with the same router the runtime uses, and score each shard's
/// subsequence sequentially with a fresh detector copy.
RunResult reference_partition(const OnlineKitsune& proto,
                              netio::PacketSource& source, size_t shards) {
  std::vector<SourcePacket> all;
  SourcePacket sp;
  while (source.next(sp)) all.push_back(sp);
  const FlowShardRouter router(shards, source.link());
  RunResult r;
  for (size_t s = 0; s < shards; ++s) {
    KitsuneScorer scorer(proto);
    for (const SourcePacket& p : all) {
      if (router.shard_of(p.pkt) != s) continue;
      auto v = netio::parse_packet(p.pkt, source.link(), p.capture_index);
      if (!v.ok()) continue;
      const netio::PacketView view = v.value();
      double score = 0.0;
      scorer.score_batch(std::span<const netio::PacketView>(&view, 1), &score);
      r.packets.emplace_back(view.index, score);
      if (score > scorer.threshold()) r.alerts.push_back(view.index);
    }
  }
  canonicalize(r);
  return r;
}

RunResult run_with(const OnlineKitsune& proto, netio::PacketSource& source,
                   IngestRuntime::Options opts) {
  RecordingSink sink;
  IngestRuntime rt(
      opts,
      [&proto](size_t) { return std::make_unique<KitsuneScorer>(proto); },
      &sink);
  auto stats = rt.run(source);
  EXPECT_TRUE(stats.ok());
  RunResult r;
  r.alerts = std::move(sink.alerts);
  r.packets = std::move(sink.packets);
  canonicalize(r);
  return r;
}

void expect_bit_identical(const RunResult& got, const RunResult& want,
                          const std::string& what) {
  ASSERT_EQ(got.packets.size(), want.packets.size()) << what;
  for (size_t i = 0; i < got.packets.size(); ++i) {
    ASSERT_EQ(got.packets[i].first, want.packets[i].first)
        << what << " packet set, i=" << i;
    // Bit-identical, not merely close: EXPECT_EQ on the doubles.
    EXPECT_EQ(got.packets[i].second, want.packets[i].second)
        << what << " score, capture_index=" << got.packets[i].first;
  }
  EXPECT_EQ(got.alerts, want.alerts) << what;
}

OnlineKitsune trained_proto(const trace::Dataset& ds, size_t grace) {
  OnlineKitsune proto;
  proto.train({ds.trace.view.data(), grace});
  return proto;
}

TEST(ShardedEquivalence, MatchesPerShardSequentialReference) {
  size_t total_alerts = 0;
  for (const char* id : {"P1", "P2", "P3", "P4"}) {
    const trace::Dataset ds = trace::make_dataset(id, 0.05);
    const size_t grace = ds.trace.view.size() * 45 / 100;
    ASSERT_GT(grace, 0u) << id;
    const OnlineKitsune proto = trained_proto(ds, grace);
    ReplayOptions replay;
    replay.begin = grace;

    for (const size_t shards : {size_t{2}, size_t{4}}) {
      TraceReplaySource ref_src(ds.trace, replay);
      const RunResult want = reference_partition(proto, ref_src, shards);
      ASSERT_FALSE(want.packets.empty()) << id;
      total_alerts += want.alerts.size();

      IngestRuntime::Options opts;
      opts.shards = shards;
      TraceReplaySource src(ds.trace, replay);
      const RunResult got = run_with(proto, src, opts);
      expect_bit_identical(got, want,
                           std::string(id) + " shards=" +
                               std::to_string(shards));
    }
  }
  // The comparison must not be vacuous: the attack segments fire somewhere.
  EXPECT_GT(total_alerts, 0u);
}

TEST(ShardedEquivalence, MatchesReferenceUnderFaultInjection) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.05);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const OnlineKitsune proto = trained_proto(ds, grace);
  FaultOptions faults;
  faults.truncate_p = 0.15;
  faults.corrupt_p = 0.1;
  faults.reorder_p = 0.05;
  faults.seed = 29;
  ReplayOptions replay;
  replay.begin = grace;

  // Fault injection is deterministic per seed, so rebuilding the source
  // replays the identical (mutated) packet sequence for both runs. The
  // damage also exercises the router's short-frame and non-IP fallbacks.
  TraceReplaySource ref_inner(ds.trace, replay);
  FaultInjectingSource ref_src(ref_inner, faults);
  const RunResult want = reference_partition(proto, ref_src, 4);
  ASSERT_FALSE(want.packets.empty());

  IngestRuntime::Options opts;
  opts.shards = 4;
  TraceReplaySource inner(ds.trace, replay);
  FaultInjectingSource src(inner, faults);
  const RunResult got = run_with(proto, src, opts);
  expect_bit_identical(got, want, "faulty shards=4");
}

TEST(ShardedEquivalence, ShardsOneBitIdenticalToSingleQueue) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.05);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const OnlineKitsune proto = trained_proto(ds, grace);
  ReplayOptions replay;
  replay.begin = grace;

  IngestRuntime::Options single;
  single.consumers = 1;
  TraceReplaySource single_src(ds.trace, replay);
  const RunResult want = run_with(proto, single_src, single);
  ASSERT_FALSE(want.packets.empty());

  IngestRuntime::Options sharded;
  sharded.shards = 1;
  TraceReplaySource shard_src(ds.trace, replay);
  const RunResult got = run_with(proto, shard_src, sharded);
  expect_bit_identical(got, want, "shards=1 vs single-queue");
}

TEST(ShardedEquivalence, InvariantAcrossRingCapacityAndBatching) {
  const trace::Dataset ds = trace::make_dataset("P2", 0.05);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const OnlineKitsune proto = trained_proto(ds, grace);
  ReplayOptions replay;
  replay.begin = grace;

  IngestRuntime::Options base;
  base.shards = 4;
  TraceReplaySource base_src(ds.trace, replay);
  const RunResult want = run_with(proto, base_src, base);
  ASSERT_FALSE(want.packets.empty());

  // Ring capacity and claim batching reshape scheduling and backpressure;
  // under kBlock the partition — and thus every score — must not move.
  // The shared-queue multi-consumer mode never had this property (its
  // packet-to-consumer assignment is a race); sharding is what makes
  // concurrency deterministic.
  for (const size_t capacity : {size_t{64}, size_t{1024}}) {
    for (const size_t batch : {size_t{1}, size_t{64}}) {
      IngestRuntime::Options opts;
      opts.shards = 4;
      opts.queue_capacity = capacity;
      opts.consumer_batch = batch;
      TraceReplaySource src(ds.trace, replay);
      const RunResult got = run_with(proto, src, opts);
      expect_bit_identical(got, want,
                           "capacity=" + std::to_string(capacity) +
                               " batch=" + std::to_string(batch));
    }
  }
}

// n TCP packets across 8 distinct IP pairs so the router spreads flows.
Trace make_multiflow_trace(size_t n) {
  Trace t;
  for (size_t i = 0; i < n; ++i) {
    netio::TcpOpts tcp;
    tcp.seq = static_cast<uint32_t>(i);
    const uint32_t src_ip = 0x0a000001 + static_cast<uint32_t>(i % 8);
    t.raw.push_back(RawPacket{
        100.0 + 0.01 * static_cast<double>(i),
        netio::build_tcp(kMacA, kMacB, src_ip, 0x0b000001, 1234, 80, tcp,
                         Bytes(i % 7, 0x61))});
  }
  netio::parse_trace(t);
  return t;
}

TEST(ShardRouting, DeterministicCanonicalAndCovering) {
  const Trace t = make_multiflow_trace(64);
  const FlowShardRouter router(4, netio::LinkType::kEthernet);
  std::vector<bool> hit(4, false);
  for (const RawPacket& p : t.raw) {
    const size_t s = router.shard_of(p);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(router.shard_of(p), s);  // pure function of the bytes
    hit[s] = true;
  }
  // 8 distinct IP pairs over 4 shards: expect more than one shard in play.
  EXPECT_GT(std::count(hit.begin(), hit.end(), true), 1);

  // Direction-independence: A->B and B->A are one conversation, and the
  // canonical channel key must land them on the same shard.
  netio::TcpOpts tcp;
  const RawPacket fwd{1.0, netio::build_tcp(kMacA, kMacB, 0x0a000001,
                                            0x0b000001, 1234, 80, tcp,
                                            Bytes(4, 0x61))};
  const RawPacket rev{1.1, netio::build_tcp(kMacB, kMacA, 0x0b000001,
                                            0x0a000001, 80, 1234, tcp,
                                            Bytes(4, 0x62))};
  EXPECT_EQ(router.shard_of(fwd), router.shard_of(rev));
  EXPECT_EQ(router.flow_hash(fwd), router.flow_hash(rev));

  // Frames too short for any header peek take the shard-0 fallback.
  const RawPacket runt{2.0, Bytes{0x02, 0x00}};
  EXPECT_EQ(router.shard_of(runt), 0u);
}

TEST(ShardedRuntime, DropNewestAccountingStaysExact) {
  const Trace t = make_multiflow_trace(600);
  IngestRuntime::Options opts;
  opts.shards = 2;
  opts.queue_capacity = 16;
  opts.overflow = OverflowPolicy::kDropOldest;  // degrades to drop-newest
  opts.registry = nullptr;
  CollectingSink sink;
  IngestRuntime rt(
      opts,
      [](size_t) {
        // Slow consumer: force the producer into full rings so the
        // shed-incoming path actually runs.
        return std::make_unique<FnScorer>(
            [](const netio::PacketView& v) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              return static_cast<double>(v.payload_len);
            },
            1e9);
      },
      &sink);
  TraceReplaySource src(t, ReplayOptions{});
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  const IngestStats& s = stats.value();
  EXPECT_GT(s.dropped, 0u);
  EXPECT_LT(s.dropped, s.enqueued);
  // The invariant the shard-mode producer preserves even though an SPSC
  // ring cannot evict its head: every arrival is either dropped or scored
  // (this trace parses cleanly, so parse_skipped is 0).
  EXPECT_EQ(s.scored + s.parse_skipped, s.enqueued - s.dropped);
  EXPECT_GT(s.queue_high_water, 0u);
  EXPECT_LE(s.queue_high_water, 16u);
}

TEST(ShardedRuntime, PerShardTelemetrySumsToTotals) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.05);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const OnlineKitsune proto = trained_proto(ds, grace);
  ReplayOptions replay;
  replay.begin = grace;

  telemetry::Registry reg;
  IngestRuntime::Options opts;
  opts.shards = 4;
  opts.registry = &reg;
  CollectingSink sink;
  IngestRuntime rt(
      opts,
      [&proto](size_t) { return std::make_unique<KitsuneScorer>(proto); },
      &sink);
  TraceReplaySource src(ds.trace, replay);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  const IngestStats& s = stats.value();
  ASSERT_GT(s.scored, 0u);

  uint64_t routed = 0, scored = 0, alerted = 0, skipped = 0;
  size_t hw_max = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string p = "ingest.shard" + std::to_string(i) + ".";
    routed += reg.counter(p + "routed").value();
    scored += reg.counter(p + "scored").value();
    alerted += reg.counter(p + "alerted").value();
    skipped += reg.counter(p + "parse_skipped").value();
    const double hw = reg.gauge(p + "ring.high_water").value();
    EXPECT_GE(hw, 0.0);
    EXPECT_LE(hw, 4096.0);
    hw_max = std::max(hw_max, static_cast<size_t>(hw));
  }
  // Per-shard instruments must tile the totals exactly: every packet is
  // owned by exactly one shard.
  EXPECT_EQ(routed, s.enqueued);
  EXPECT_EQ(scored, s.scored);
  EXPECT_EQ(alerted, s.alerted);
  EXPECT_EQ(skipped, s.parse_skipped);
  EXPECT_EQ(hw_max, s.queue_high_water);
  EXPECT_EQ(static_cast<uint64_t>(sink.alerts().size()), s.alerted);
}

TEST(ShardedRuntime, HotSwapDuringPacedReplayKeepsAccountingExact) {
  // 1600 packets 10 ms apart, replayed paced at 50x: the run is pinned to
  // ~320 ms of wall clock, so a deploy() at 60 ms lands mid-stream
  // deterministically. The initial model never alerts; the deployed one
  // always does — alert accounting proves exactly when the swap took.
  const Trace t = make_multiflow_trace(1600);
  ReplayOptions replay;
  replay.pace = true;
  replay.speed = 50.0;

  telemetry::Registry reg;
  IngestRuntime::Options opts;
  opts.shards = 2;
  opts.registry = &reg;
  const auto quiet = [](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView& v) {
          return static_cast<double>(v.payload_len);
        },
        1e9);
  };
  const auto loud = [](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView& v) {
          return static_cast<double>(v.payload_len);
        },
        -1.0);
  };
  CollectingSink sink;
  IngestRuntime rt(opts, quiet, &sink);
  TraceReplaySource src(t, replay);
  std::atomic<bool> run_ok{false};
  std::thread runner([&] {
    auto r = rt.run(src);
    run_ok.store(r.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  rt.deploy(loud);
  runner.join();
  ASSERT_TRUE(run_ok.load());

  const IngestStats s = rt.stats();
  EXPECT_EQ(s.scored + s.parse_skipped, s.enqueued);  // kBlock: lossless
  EXPECT_EQ(s.scored, static_cast<uint64_t>(t.raw.size()));
  // The swap landed mid-run: some packets scored quiet, the rest loud, and
  // the sink's alert log agrees with the counter exactly.
  EXPECT_GT(s.alerted, 0u);
  EXPECT_LT(s.alerted, s.scored);
  EXPECT_EQ(static_cast<uint64_t>(sink.alerts().size()), s.alerted);
  const uint64_t swaps = reg.counter("ingest.swaps_applied").value();
  EXPECT_GE(swaps, 1u);
  EXPECT_LE(swaps, 2u);  // at most one rebuild per shard consumer
}

TEST(OptionsValidation, NormalizedClampsEverythingInOnePass) {
  IngestRuntime::Options wild;
  wild.queue_capacity = 0;
  wild.consumers = 0;
  wild.shards = 100000;
  wild.consumer_batch = 0;
  wild.score_batch = size_t{1} << 40;
  std::string diag;
  const auto norm = IngestRuntime::Options::normalized(wild, &diag);
  EXPECT_EQ(norm.queue_capacity, 1u);
  EXPECT_EQ(norm.consumers, 1u);
  EXPECT_EQ(norm.shards, 256u);
  EXPECT_EQ(norm.consumer_batch, 1u);
  EXPECT_EQ(norm.score_batch, 65536u);
  // One diagnostic line naming every adjustment — not scattered clamps.
  ASSERT_FALSE(diag.empty());
  EXPECT_EQ(diag.find('\n'), std::string::npos);
  for (const char* field : {"queue_capacity", "consumers", "shards",
                            "consumer_batch", "score_batch"}) {
    EXPECT_NE(diag.find(field), std::string::npos) << field;
  }

  IngestRuntime::Options sane;
  sane.shards = 4;
  std::string no_diag = "sentinel";
  const auto same = IngestRuntime::Options::normalized(sane, &no_diag);
  EXPECT_TRUE(no_diag.empty());
  EXPECT_EQ(same.shards, 4u);
  EXPECT_EQ(same.consumer_batch, sane.consumer_batch);

  // A runtime built from wild options still runs (shards clamp to 256,
  // which dwarfs the trace — empty shards just drain nothing).
  IngestRuntime::Options small = wild;
  small.shards = 3;  // keep the thread count reasonable for the test
  small.registry = nullptr;
  CollectingSink sink;
  IngestRuntime rt(
      small,
      [](size_t) {
        return std::make_unique<FnScorer>(
            [](const netio::PacketView& v) {
              return static_cast<double>(v.payload_len);
            },
            0.5);
      },
      &sink);
  const Trace t = make_multiflow_trace(50);
  TraceReplaySource src(t, ReplayOptions{});
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().scored, 50u);
}

}  // namespace
}  // namespace lumen
