// Deep simulator-fidelity tests: every generated frame must be a valid,
// checksummed, parseable packet; TCP sessions must carry coherent state
// machines; application payloads must be structurally real.
#include <gtest/gtest.h>

#include <map>

#include "flow/flow.h"
#include "netio/parse.h"
#include "trace/attacks.h"
#include "trace/registry.h"

namespace lumen::trace {
namespace {

using netio::ByteReader;
using netio::internet_checksum;

const Dataset& f1() {
  static const Dataset ds = make_dataset("F1", 0.2);
  return ds;
}

TEST(SimFidelity, AllFramesParseCleanly) {
  for (const char* id : {"F0", "F3", "F4", "P0", "P2"}) {
    Dataset ds = make_dataset(id, 0.15);
    netio::Trace copy = ds.trace;
    EXPECT_EQ(netio::parse_trace(copy), 0u) << id;
  }
}

TEST(SimFidelity, Ipv4HeaderChecksumsAreValid) {
  size_t checked = 0;
  for (const auto& v : f1().trace.view) {
    if (!v.has_ip) continue;
    const auto& raw = f1().trace.raw[v.index].data;
    // Checksum over a header containing its own checksum folds to zero.
    EXPECT_EQ(internet_checksum(
                  {raw.data() + static_cast<size_t>(v.ip_off), 20}),
              0)
        << "packet " << v.index;
    ++checked;
  }
  EXPECT_GT(checked, 1000u);
}

TEST(SimFidelity, TcpChecksumsAreValid) {
  size_t checked = 0;
  for (const auto& v : f1().trace.view) {
    if (!v.has_tcp()) continue;
    const auto& raw = f1().trace.raw[v.index].data;
    const size_t l4 = static_cast<size_t>(v.l4_off);
    const size_t l4_len = raw.size() - l4;
    uint32_t pseudo = 0;
    pseudo += (v.src_ip >> 16) + (v.src_ip & 0xffff);
    pseudo += (v.dst_ip >> 16) + (v.dst_ip & 0xffff);
    pseudo += 6 + static_cast<uint32_t>(l4_len);
    EXPECT_EQ(internet_checksum({raw.data() + l4, l4_len}, pseudo), 0)
        << "packet " << v.index;
    if (++checked > 2000) break;
  }
  EXPECT_GT(checked, 500u);
}

TEST(SimFidelity, IpTotalLengthMatchesFrame) {
  for (const auto& v : f1().trace.view) {
    if (!v.has_ip) continue;
    const auto& raw = f1().trace.raw[v.index].data;
    EXPECT_EQ(static_cast<size_t>(v.ip_len),
              raw.size() - 14)  // Ethernet header
        << "packet " << v.index;
  }
}

TEST(SimFidelity, TcpSequenceNumbersAdvanceWithPayload) {
  Sim sim(11);
  Sim::TcpSessionSpec spec;
  spec.client = 0x0a000001;
  spec.server = 0x0a000002;
  spec.dport = 80;
  spec.data_pkts = 3;
  sim.tcp_session(0.0, spec);
  Dataset ds = sim.finish("X", "seq-test", Granularity::kPacket);

  // Client-side packets: each next seq == prev seq + prev payload (+1 for
  // SYN/FIN).
  uint32_t expect_seq = 0;
  bool first = true;
  for (const auto& v : ds.trace.view) {
    if (v.src_ip != 0x0a000001) continue;
    if (!first) {
      EXPECT_EQ(v.tcp_seq, expect_seq) << "packet " << v.index;
    }
    first = false;
    uint32_t adv = v.payload_len;
    if (v.tcp_flag(netio::kSyn) || v.tcp_flag(netio::kFin)) ++adv;
    expect_seq = v.tcp_seq + adv;
  }
}

TEST(SimFidelity, CompleteSessionsReachSF) {
  Sim sim(12);
  for (int i = 0; i < 20; ++i) {
    Sim::TcpSessionSpec spec;
    spec.client = 0x0a000001 + static_cast<uint32_t>(i);
    spec.server = 0x0a000050;
    spec.dport = 80;
    spec.data_pkts = 2;
    sim.tcp_session(10.0 * i, spec);
  }
  Dataset ds = sim.finish("X", "sf-test", Granularity::kPacket);
  const auto conns = flow::assemble_connections(ds.trace);
  ASSERT_EQ(conns.size(), 20u);
  for (const auto& c : conns) {
    EXPECT_EQ(flow::summarize(c, ds.trace).state, flow::ConnState::kSF);
  }
}

TEST(SimFidelity, RejectedAndSilentSessions) {
  Sim sim(13);
  Sim::TcpSessionSpec rej;
  rej.client = 0x0a000001;
  rej.server = 0x0a000002;
  rej.rejected = true;
  sim.tcp_session(0.0, rej);
  Sim::TcpSessionSpec silent;
  silent.client = 0x0a000003;
  silent.server = 0x0a000002;
  silent.silent_server = true;
  sim.tcp_session(100.0, silent);
  Dataset ds = sim.finish("X", "state-test", Granularity::kPacket);
  const auto conns = flow::assemble_connections(ds.trace);
  ASSERT_EQ(conns.size(), 2u);
  EXPECT_EQ(flow::summarize(conns[0], ds.trace).state, flow::ConnState::kREJ);
  EXPECT_EQ(flow::summarize(conns[1], ds.trace).state, flow::ConnState::kS0);
}

TEST(SimFidelity, DnsPayloadCarriesQName) {
  const netio::Bytes q = netio::payload_dns_query(0x1234, "cam.vendor.io");
  ByteReader r(q);
  EXPECT_EQ(r.u16(0), 0x1234);  // txid
  EXPECT_EQ(r.u16(4), 1);       // QDCOUNT
  // Labels: 3"cam" 6"vendor" 2"io" 0
  EXPECT_EQ(r.u8(12), 3);
  EXPECT_EQ(q[13], 'c');
  EXPECT_EQ(r.u8(16), 6);
  EXPECT_EQ(r.u8(23), 2);
  EXPECT_EQ(r.u8(26), 0);
}

TEST(SimFidelity, HttpPayloadIsARequestLine) {
  const netio::Bytes p =
      netio::payload_http_request("POST", "/api", "host.example");
  const std::string text(p.begin(), p.end());
  EXPECT_EQ(text.rfind("POST /api HTTP/1.1\r\n", 0), 0u);
  EXPECT_NE(text.find("Host: host.example"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 4), "\r\n\r\n");
}

TEST(SimFidelity, BenignTrafficIsAllBenignLabeled) {
  Sim sim(14);
  BenignStyle st;
  sim.benign_iot_traffic(0.0, 20.0, 3, st);
  Dataset ds = sim.finish("X", "benign-only", Granularity::kPacket);
  EXPECT_GT(ds.packets(), 100u);
  EXPECT_EQ(ds.malicious_packets(), 0u);
}

TEST(SimFidelity, StylesShiftDistributions) {
  // The enterprise and IoT-lab styles must produce measurably different
  // traffic (this is the domain shift that drives Fig. 9).
  Sim sim_a(15), sim_b(15);
  BenignStyle ent;
  ent.size_scale = 1.8;
  ent.iat_scale = 0.7;
  BenignStyle lab;
  lab.size_scale = 0.6;
  lab.iat_scale = 1.3;
  sim_a.benign_iot_traffic(0.0, 60.0, 4, ent);
  sim_b.benign_iot_traffic(0.0, 60.0, 4, lab);
  Dataset a = sim_a.finish("A", "ent", Granularity::kPacket);
  Dataset b = sim_b.finish("B", "lab", Granularity::kPacket);
  auto mean_len = [](const Dataset& d) {
    double s = 0.0;
    for (const auto& v : d.trace.view) s += v.wire_len;
    return s / static_cast<double>(d.packets());
  };
  EXPECT_GT(mean_len(a), mean_len(b) * 1.2);
}

TEST(SimFidelity, WifiFramesHaveNoIpAndParse) {
  Sim sim(16, netio::LinkType::kIeee80211);
  const netio::MacAddr ap{2, 0x1f, 0, 0, 0, 1};
  wifi_benign(sim, 0.0, 10.0, ap, 3);
  Dataset ds = sim.finish("X", "wifi", Granularity::kPacket);
  ASSERT_GT(ds.packets(), 100u);
  size_t beacons = 0;
  for (const auto& v : ds.trace.view) {
    EXPECT_TRUE(v.is_dot11);
    EXPECT_FALSE(v.has_ip);
    beacons += v.dot11_type == netio::Dot11Type::kManagement &&
               v.dot11_subtype == 8;
  }
  // ~10s of 102.4ms beacons.
  EXPECT_NEAR(static_cast<double>(beacons), 98.0, 5.0);
}

TEST(SimFidelity, MacDerivationIsStable) {
  const auto m1 = Sim::mac_for(0xc0a8010a);
  const auto m2 = Sim::mac_for(0xc0a8010a);
  const auto m3 = Sim::mac_for(0xc0a8010b);
  EXPECT_EQ(m1, m2);
  EXPECT_NE(m1, m3);
  EXPECT_EQ(m1[0], 0x02);  // locally administered
}

}  // namespace
}  // namespace lumen::trace
