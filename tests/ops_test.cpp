// Operation-level tests: each built-in op is exercised directly through the
// registry against a small synthetic dataset, with hand-computed expected
// values where feasible.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/engine.h"
#include "core/ops_common.h"
#include "trace/attacks.h"

namespace lumen::core {
namespace {

using features::FeatureTable;

/// Small deterministic dataset: benign web traffic plus a SYN flood.
const trace::Dataset& tiny_dataset() {
  static const trace::Dataset ds = [] {
    trace::Sim sim(424242);
    trace::BenignStyle st;
    sim.benign_iot_traffic(0.0, 30.0, 3, st);
    trace::attack_syn_flood(sim, 10.0, 8.0, sim.lan_ip(st, 1), 80, 15.0,
                            trace::AttackType::kSynFlood);
    return sim.finish("T0", "tiny", trace::Granularity::kPacket);
  }();
  return ds;
}

/// Run a single op through the registry.
Result<Value> run_op(const std::string& func, const Json& params,
                     const std::vector<const Value*>& inputs,
                     const trace::Dataset& ds = tiny_dataset()) {
  register_builtin_operations();
  OpSpec spec;
  spec.func = func;
  spec.output = "out";
  spec.params = params;
  auto op = OperationRegistry::instance().create(spec);
  if (!op.ok()) return op.error();
  OpContext ctx;
  ctx.dataset = &ds;
  return op.value()->run(inputs, ctx);
}

Json parse(const char* text) {
  auto r = Json::parse(text);
  EXPECT_TRUE(r.ok()) << r.error().message;
  return r.value();
}

Value source_packets(const trace::Dataset& ds = tiny_dataset()) {
  PacketSet ps;
  ps.dataset = &ds;
  for (uint32_t i = 0; i < ds.trace.view.size(); ++i) ps.idx.push_back(i);
  return Value(std::move(ps));
}

TEST(Ops, RegistryKnowsAtLeastThirtyOps) {
  register_builtin_operations();
  const auto ops = OperationRegistry::instance().known_ops();
  EXPECT_GE(ops.size(), 25u);  // ~30 configurable operations in the paper
}

TEST(Ops, FieldExtractSourcesWholeDataset) {
  auto v = run_op("field_extract", parse(R"({"param": ["srcIP", "len"]})"), {});
  ASSERT_TRUE(v.ok()) << v.error().message;
  const auto& ps = std::get<PacketSet>(v.value());
  EXPECT_EQ(ps.idx.size(), tiny_dataset().trace.view.size());
}

TEST(Ops, FieldExtractRejectsUnknownField) {
  auto v = run_op("field_extract", parse(R"({"param": ["bogus_field"]})"), {});
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().message.find("bogus_field"), std::string::npos);
}

TEST(Ops, FilterKeepsOnlyMatching) {
  const Value src = source_packets();
  auto v = run_op("filter", parse(R"({"require": ["is_tcp"]})"), {&src});
  ASSERT_TRUE(v.ok());
  const auto& ps = std::get<PacketSet>(v.value());
  ASSERT_FALSE(ps.idx.empty());
  for (uint32_t i : ps.idx) {
    EXPECT_TRUE(tiny_dataset().trace.view[i].has_tcp());
  }
}

TEST(Ops, GroupbySrcIpPartitionsPackets) {
  const Value src = source_packets();
  auto v = run_op("groupby", parse(R"({"flowid": ["srcIp"]})"), {&src});
  ASSERT_TRUE(v.ok()) << v.error().message;
  const auto& gp = std::get<GroupedPackets>(v.value());
  ASSERT_GT(gp.groups.size(), 2u);
  size_t total = 0;
  std::set<uint32_t> seen;
  for (const Group& g : gp.groups) {
    total += g.idx.size();
    uint32_t ip = tiny_dataset().trace.view[g.idx[0]].src_ip;
    for (uint32_t i : g.idx) {
      EXPECT_EQ(tiny_dataset().trace.view[i].src_ip, ip);
      EXPECT_TRUE(seen.insert(i).second) << "packet in two groups";
    }
  }
  EXPECT_EQ(total, tiny_dataset().trace.view.size());
}

TEST(Ops, GroupbyUnknownKeyFails) {
  const Value src = source_packets();
  auto v = run_op("groupby", parse(R"({"flowid": ["nonsense"]})"), {&src});
  EXPECT_FALSE(v.ok());
}

TEST(Ops, TimeSliceBoundsWindows) {
  const Value src = source_packets();
  auto grouped = run_op("groupby", parse(R"({"flowid": ["srcip"]})"), {&src});
  ASSERT_TRUE(grouped.ok());
  auto v = run_op("time_slice", parse(R"({"window": 5})"), {&grouped.value()});
  ASSERT_TRUE(v.ok());
  const auto& gp = std::get<GroupedPackets>(v.value());
  for (const Group& g : gp.groups) {
    double lo = 1e30, hi = -1e30;
    for (uint32_t i : g.idx) {
      lo = std::min(lo, tiny_dataset().trace.view[i].ts);
      hi = std::max(hi, tiny_dataset().trace.view[i].ts);
    }
    EXPECT_LE(hi - lo, 5.0 + 1e-9);
  }
}

TEST(Ops, TimeSliceRejectsBadWindow) {
  const Value src = source_packets();
  EXPECT_FALSE(run_op("time_slice", parse(R"({"window": -1})"), {&src}).ok());
}

TEST(Ops, ApplyAggregatesComputesHandValues) {
  // Build a 3-packet group by filtering a fresh two-host dataset.
  trace::Sim sim(7);
  trace::Sim::TcpSessionSpec spec;
  spec.client = 0x0a000001;
  spec.server = 0x0a000002;
  spec.data_pkts = 2;
  sim.tcp_session(0.0, spec);
  const trace::Dataset ds =
      sim.finish("T1", "tiny", trace::Granularity::kPacket);

  const Value src = source_packets(ds);
  auto grouped =
      run_op("groupby", parse(R"({"flowid": ["srcip"]})"), {&src}, ds);
  ASSERT_TRUE(grouped.ok());
  auto v = run_op("apply_aggregates",
                  parse(R"({"list": [{"field": "len",
                                      "funcs": ["mean", "min", "max"]},
                                     {"func": "count"}]})"),
                  {&grouped.value()}, ds);
  ASSERT_TRUE(v.ok()) << v.error().message;
  const auto& t = std::get<FeatureTable>(v.value());
  ASSERT_EQ(t.cols, 4u);
  EXPECT_EQ(t.col_names[0], "len_mean");
  // Verify against direct computation for group 0.
  const auto& gview = ds.trace.view;
  double mean = 0.0, mn = 1e9, mx = 0.0;
  size_t n = 0;
  for (const auto& pv : gview) {
    if (pv.src_ip == 0x0a000001) {
      mean += pv.wire_len;
      mn = std::min<double>(mn, pv.wire_len);
      mx = std::max<double>(mx, pv.wire_len);
      ++n;
    }
  }
  mean /= static_cast<double>(n);
  EXPECT_NEAR(t.at(0, 0), mean, 1e-9);
  EXPECT_EQ(t.at(0, 1), mn);
  EXPECT_EQ(t.at(0, 2), mx);
  EXPECT_EQ(t.at(0, 3), static_cast<double>(n));
}

TEST(Ops, ApplyAggregatesRejectsUnknownFunc) {
  const Value src = source_packets();
  auto grouped = run_op("groupby", parse(R"({"flowid": ["srcip"]})"), {&src});
  auto v = run_op("apply_aggregates",
                  parse(R"({"list": [{"field": "len", "funcs": ["blorp"]}]})"),
                  {&grouped.value()});
  EXPECT_FALSE(v.ok());
}

TEST(Ops, PacketFeaturesRowPerPacket) {
  const Value src = source_packets();
  auto v = run_op("packet_features",
                  parse(R"({"param": ["len", "dport", "iat"]})"), {&src});
  ASSERT_TRUE(v.ok());
  const auto& t = std::get<FeatureTable>(v.value());
  EXPECT_EQ(t.rows, tiny_dataset().trace.view.size());
  ASSERT_EQ(t.cols, 3u);
  // First packet's iat is 0; lengths match the views.
  EXPECT_EQ(t.at(0, 2), 0.0);
  EXPECT_EQ(t.at(5, 0), tiny_dataset().trace.view[5].wire_len);
}

TEST(Ops, NprintBitsMatchRawBytes) {
  const Value src = source_packets();
  auto v = run_op("nprint", parse(R"({"layers": ["ipv4"]})"), {&src});
  ASSERT_TRUE(v.ok());
  const auto& t = std::get<FeatureTable>(v.value());
  ASSERT_EQ(t.cols, 160u);  // 20 bytes x 8 bits
  const trace::Dataset& ds = tiny_dataset();
  // Check the first IPv4 packet: version nibble 0100 0101 (0x45).
  for (size_t r = 0; r < t.rows; ++r) {
    const auto& view = ds.trace.view[static_cast<size_t>(t.unit_id[r])];
    if (!view.has_ip) continue;
    EXPECT_EQ(t.at(r, 0), 0.0);
    EXPECT_EQ(t.at(r, 1), 1.0);
    EXPECT_EQ(t.at(r, 5), 1.0);
    EXPECT_EQ(t.at(r, 7), 1.0);
    break;
  }
}

TEST(Ops, NprintAbsentLayerIsMinusOne) {
  const Value src = source_packets();
  auto v = run_op("nprint", parse(R"({"layers": ["icmp"]})"), {&src});
  ASSERT_TRUE(v.ok());
  const auto& t = std::get<FeatureTable>(v.value());
  const trace::Dataset& ds = tiny_dataset();
  bool checked = false;
  for (size_t r = 0; r < t.rows && !checked; ++r) {
    const auto& view = ds.trace.view[static_cast<size_t>(t.unit_id[r])];
    if (view.proto != netio::IpProto::kIcmp) {
      for (size_t c = 0; c < t.cols; ++c) EXPECT_EQ(t.at(r, c), -1.0);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Ops, DampedStatsShapeAndSanity) {
  const Value src = source_packets();
  auto v = run_op("damped_stats", parse(R"({"lambdas": [1.0, 0.1]})"), {&src});
  ASSERT_TRUE(v.ok()) << v.error().message;
  const auto& t = std::get<FeatureTable>(v.value());
  EXPECT_EQ(t.rows, tiny_dataset().trace.view.size());
  EXPECT_EQ(t.cols, 2u * 23u);  // 23 features per lambda (Kitsune layout)
  // Weights are positive once a context has seen a packet.
  EXPECT_GE(t.at(0, 0), 1.0);
  for (double x : t.data) EXPECT_TRUE(std::isfinite(x));
}

TEST(Ops, UniflowsAndConnectionsAgreeWithFlowModule) {
  const Value src = source_packets();
  auto fv = run_op("uniflows", parse("{}"), {&src});
  ASSERT_TRUE(fv.ok());
  EXPECT_EQ(std::get<FlowSet>(fv.value()).flows.size(),
            flow::assemble_uniflows(tiny_dataset().trace).size());
  auto cv = run_op("connections", parse("{}"), {&src});
  ASSERT_TRUE(cv.ok());
  const auto& cs = std::get<ConnSet>(cv.value());
  EXPECT_EQ(cs.conns.size(),
            flow::assemble_connections(tiny_dataset().trace).size());
  EXPECT_EQ(cs.records.size(), cs.conns.size());
}

TEST(Ops, ConnFeaturesSetsCompose) {
  const Value src = source_packets();
  auto cv = run_op("connections", parse("{}"), {&src});
  ASSERT_TRUE(cv.ok());
  auto zeek = run_op("conn_features", parse(R"({"set": ["zeek"]})"),
                     {&cv.value()});
  ASSERT_TRUE(zeek.ok());
  auto both = run_op("conn_features", parse(R"({"set": ["zeek", "iiot"]})"),
                     {&cv.value()});
  ASSERT_TRUE(both.ok());
  EXPECT_GT(std::get<FeatureTable>(both.value()).cols,
            std::get<FeatureTable>(zeek.value()).cols);
  EXPECT_FALSE(
      run_op("conn_features", parse(R"({"set": ["wat"]})"), {&cv.value()})
          .ok());
}

TEST(Ops, FirstKPacketsZeroPads) {
  const Value src = source_packets();
  auto cv = run_op("connections", parse("{}"), {&src});
  auto v = run_op("first_k_packets", parse(R"({"k": 50, "what": ["len"]})"),
                  {&cv.value()});
  ASSERT_TRUE(v.ok());
  const auto& t = std::get<FeatureTable>(v.value());
  EXPECT_EQ(t.cols, 50u);
  // Short connections end in zero padding.
  const auto& conns = std::get<ConnSet>(cv.value()).conns;
  for (size_t r = 0; r < t.rows; ++r) {
    if (conns[r].pkts.size() < 50) {
      EXPECT_EQ(t.at(r, 49), 0.0);
    }
  }
}

TEST(Ops, SplitTakesComplementaryParts) {
  const Value src = source_packets();
  auto feats = run_op("packet_features", parse(R"({"param": ["len"]})"), {&src});
  ASSERT_TRUE(feats.ok());
  auto train = run_op("split", parse(R"({"train_fraction": 0.7, "take": "train"})"),
                      {&feats.value()});
  auto test = run_op("split", parse(R"({"train_fraction": 0.7, "take": "test"})"),
                     {&feats.value()});
  ASSERT_TRUE(train.ok());
  ASSERT_TRUE(test.ok());
  const auto& tr = std::get<FeatureTable>(train.value());
  const auto& te = std::get<FeatureTable>(test.value());
  const auto& full = std::get<FeatureTable>(feats.value());
  EXPECT_EQ(tr.rows + te.rows, full.rows);
  // Train rows all precede test rows in time.
  double tr_max = -1e30, te_min = 1e30;
  for (size_t r = 0; r < tr.rows; ++r) tr_max = std::max(tr_max, tr.unit_time[r]);
  for (size_t r = 0; r < te.rows; ++r) te_min = std::min(te_min, te.unit_time[r]);
  EXPECT_LE(tr_max, te_min + 1e-9);
}

TEST(Ops, SampleIsDeterministicAndSmaller) {
  const Value src = source_packets();
  auto feats = run_op("packet_features", parse(R"({"param": ["len"]})"), {&src});
  auto a = run_op("sample", parse(R"({"fraction": 0.25, "seed": 5})"),
                  {&feats.value()});
  auto b = run_op("sample", parse(R"({"fraction": 0.25, "seed": 5})"),
                  {&feats.value()});
  ASSERT_TRUE(a.ok());
  const auto& ta = std::get<FeatureTable>(a.value());
  const auto& tb = std::get<FeatureTable>(b.value());
  EXPECT_EQ(ta.unit_id, tb.unit_id);
  EXPECT_NEAR(static_cast<double>(ta.rows),
              0.25 * static_cast<double>(std::get<FeatureTable>(feats.value()).rows),
              2.0);
  EXPECT_FALSE(run_op("sample", parse(R"({"fraction": 1.5})"),
                      {&feats.value()})
                   .ok());
}

TEST(Ops, ConcatFeaturesValidatesAlignment) {
  const Value src = source_packets();
  auto a = run_op("packet_features", parse(R"({"param": ["len"]})"), {&src});
  auto b = run_op("packet_features", parse(R"({"param": ["dport"]})"), {&src});
  auto merged = run_op("concat_features", parse("{}"),
                       {&a.value(), &b.value()});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(std::get<FeatureTable>(merged.value()).cols, 2u);
  // Misaligned inputs (different unit sets) are rejected.
  auto cv = run_op("connections", parse("{}"), {&src});
  auto c = run_op("conn_features", parse(R"({"set": ["zeek"]})"), {&cv.value()});
  EXPECT_FALSE(run_op("concat_features", parse("{}"),
                      {&a.value(), &c.value()})
                   .ok());
}

TEST(Ops, OneHotExpandsColumn) {
  const Value src = source_packets();
  auto feats =
      run_op("packet_features", parse(R"({"param": ["len", "proto"]})"), {&src});
  auto v = run_op("one_hot",
                  parse(R"({"column": "proto", "values": [6, 17, 1]})"),
                  {&feats.value()});
  ASSERT_TRUE(v.ok());
  const auto& t = std::get<FeatureTable>(v.value());
  EXPECT_EQ(t.cols, 4u);  // len + 3 indicators
  for (size_t r = 0; r < t.rows; ++r) {
    const double sum = t.at(r, 1) + t.at(r, 2) + t.at(r, 3);
    EXPECT_LE(sum, 1.0);
  }
  EXPECT_FALSE(
      run_op("one_hot", parse(R"({"column": "nope"})"), {&feats.value()}).ok());
}

TEST(Ops, ModelTrainPredictEvaluateChain) {
  const Value src = source_packets();
  auto feats = run_op(
      "packet_features",
      parse(R"({"param": ["len", "iat", "dport", "is_syn", "is_ack"]})"),
      {&src});
  ASSERT_TRUE(feats.ok());
  auto model = run_op("model", parse(R"({"model_type": "RandomForest"})"), {});
  ASSERT_TRUE(model.ok());
  auto trained = run_op("train", parse("{}"), {&model.value(), &feats.value()});
  ASSERT_TRUE(trained.ok()) << trained.error().message;
  auto preds = run_op("predict", parse("{}"), {&trained.value(), &feats.value()});
  ASSERT_TRUE(preds.ok());
  auto metrics = run_op("evaluate", parse("{}"), {&preds.value()});
  ASSERT_TRUE(metrics.ok());
  const auto& m = std::get<Metrics>(metrics.value());
  // Training-set fit on separable data: precision should be high.
  EXPECT_GT(m.get("precision"), 0.8);
  EXPECT_GT(m.get("auc"), 0.9);
}

TEST(Ops, ModelRejectsUnknownType) {
  EXPECT_FALSE(run_op("model", parse(R"({"model_type": "Quantum"})"), {}).ok());
  EXPECT_FALSE(run_op("model", parse(R"({})"), {}).ok());
}

}  // namespace
}  // namespace lumen::core
