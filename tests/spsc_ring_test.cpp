// SpscRing and ModelSlot: the two lock-free primitives under the sharded
// ingest path. Single-threaded tests pin the index arithmetic (wrap-around,
// batched claim/publish, full/empty/closed edges); the two-thread stresses
// are the TSan targets — FIFO integrity across millions of wraps for the
// ring, no torn value and bounded node retention for the slot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/model_slot.h"
#include "common/spsc_ring.h"

namespace lumen {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4096).capacity(), 4096u);
  EXPECT_EQ(SpscRing<int>(5000).capacity(), 8192u);
}

TEST(SpscRing, FifoAcrossManyWraps) {
  SpscRing<int> ring(4);
  std::vector<int> out;
  int next_push = 0, next_pop = 0;
  // Interleave pushes and pops so head/tail wrap the 4-slot ring hundreds
  // of times; order and content must survive every wrap.
  for (int round = 0; round < 1000; ++round) {
    int vals[3];
    for (int i = 0; i < 3; ++i) vals[i] = next_push + i;
    const size_t pushed = ring.try_push(vals, 3);
    next_push += static_cast<int>(pushed);
    ASSERT_GT(pushed, 0u);
    ASSERT_GT(ring.try_pop(out, 2), 0u);
    for (const int v : out) {
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  while (ring.try_pop(out, 64) > 0) {
    for (const int v : out) {
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, BatchedClaimPublishPartialAccept) {
  SpscRing<int> ring(8);
  int vals[16];
  for (int i = 0; i < 16; ++i) vals[i] = i;
  // A batch larger than the free space is accepted partially, in order.
  EXPECT_EQ(ring.try_push(vals, 16), 8u);
  EXPECT_EQ(ring.try_push(vals + 8, 8), 0u);  // full
  std::vector<int> out;
  EXPECT_EQ(ring.try_pop(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ring.try_push(vals + 8, 8), 3u);  // exactly the freed slots
  // The consumer refreshes its view of the producer index only when the
  // cached view runs empty, so this claim serves the 5 items it already
  // knew about and the next claim picks up the 3 published since.
  EXPECT_EQ(ring.try_pop(out, 64), 5u);
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5, 6, 7}));
  EXPECT_EQ(ring.try_pop(out, 64), 3u);
  EXPECT_EQ(out, (std::vector<int>{8, 9, 10}));
}

TEST(SpscRing, EmptyFullAndClosedEdges) {
  SpscRing<int> ring(2);
  std::vector<int> out;
  EXPECT_EQ(ring.try_pop(out, 4), 0u);  // empty
  int v = 7;
  ASSERT_TRUE(ring.try_push(std::move(v)));
  v = 8;
  ASSERT_TRUE(ring.try_push(std::move(v)));
  v = 9;
  EXPECT_FALSE(ring.try_push(std::move(v)));  // full
  EXPECT_TRUE(ring.wait_nonempty());

  ring.close();
  v = 10;
  EXPECT_FALSE(ring.try_push(std::move(v)));  // closed: refuse new work
  EXPECT_FALSE(ring.wait_notfull());          // producer told to stop
  // Consumer drains the remainder, then sees end-of-stream.
  EXPECT_TRUE(ring.wait_nonempty());
  EXPECT_EQ(ring.try_pop(out, 4), 2u);
  EXPECT_EQ(out, (std::vector<int>{7, 8}));
  EXPECT_FALSE(ring.wait_nonempty());
}

TEST(SpscRing, MovesElementsThrough) {
  SpscRing<std::unique_ptr<int>> ring(4);
  auto p = std::make_unique<int>(42);
  ASSERT_TRUE(ring.try_push(std::move(p)));
  EXPECT_EQ(p, nullptr);  // accepted items are moved-from
  std::vector<std::unique_ptr<int>> out;
  ASSERT_EQ(ring.try_pop(out, 1), 1u);
  ASSERT_NE(out[0], nullptr);
  EXPECT_EQ(*out[0], 42);
}

TEST(SpscRing, HighWaterTracksPeakOccupancy) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.high_water(), 0u);
  int vals[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(ring.try_push(vals, 5), 5u);
  EXPECT_EQ(ring.high_water(), 5u);
  std::vector<int> out;
  ASSERT_EQ(ring.try_pop(out, 5), 5u);
  EXPECT_EQ(ring.high_water(), 5u);  // a high-water mark never recedes
  ASSERT_EQ(ring.try_push(vals, 8), 8u);
  EXPECT_EQ(ring.high_water(), 8u);
  EXPECT_LE(ring.high_water(), ring.capacity());
}

// The TSan target: one producer and one consumer hammer a tiny ring so
// every publication path (batched push, batched pop, wait/backoff, close)
// races constantly. The consumer checks the exact FIFO sequence, which
// fails loudly if a slot is ever read before its release-store published it.
TEST(SpscRing, TwoThreadStressKeepsFifo) {
  constexpr uint32_t kCount = 200000;
  SpscRing<uint32_t> ring(64);
  std::atomic<bool> ok{true};

  std::thread consumer([&] {
    std::vector<uint32_t> out;
    uint32_t expect = 0;
    while (ring.wait_nonempty()) {
      ring.try_pop(out, 16);
      for (const uint32_t v : out) {
        if (v != expect) {
          ok.store(false);
          return;
        }
        ++expect;
      }
    }
    if (expect != kCount) ok.store(false);
  });

  uint32_t batch[13];
  uint32_t next = 0;
  while (next < kCount) {
    uint32_t n = 0;
    while (n < 13 && next + n < kCount) {
      batch[n] = next + n;
      ++n;
    }
    uint32_t done = 0;
    while (done < n) {
      const size_t accepted = ring.try_push(batch + done, n - done);
      done += static_cast<uint32_t>(accepted);
      if (accepted == 0) ASSERT_TRUE(ring.wait_notfull());
    }
    next += n;
  }
  ring.close();
  consumer.join();
  EXPECT_TRUE(ok.load());
  EXPECT_GE(ring.high_water(), 1u);
  EXPECT_LE(ring.high_water(), ring.capacity());
}

TEST(ModelSlot, PinReturnsInitialValue) {
  ModelSlot<int> slot(std::make_unique<int>(11), 2);
  const auto pinned = slot.pin(0);
  ASSERT_NE(pinned.value, nullptr);
  EXPECT_EQ(*pinned.value, 11);
  EXPECT_EQ(pinned.version, 1u);
  EXPECT_EQ(slot.version(), 1u);
  EXPECT_EQ(slot.live_nodes(), 1u);
}

TEST(ModelSlot, PublishAdvancesVersionAndReclaims) {
  ModelSlot<int> slot(std::make_unique<int>(1), 1);
  EXPECT_EQ(*slot.pin(0).value, 1);
  slot.publish(std::make_unique<int>(2));
  // The reader's announced epoch still protects the old node.
  EXPECT_EQ(slot.live_nodes(), 2u);
  const auto pinned = slot.pin(0);
  EXPECT_EQ(*pinned.value, 2);
  EXPECT_EQ(pinned.version, 2u);
  // Re-pinning moved the reader past version 1; the old node is now
  // unreachable and the next reclamation frees it.
  slot.reclaim();
  EXPECT_EQ(slot.live_nodes(), 1u);
}

TEST(ModelSlot, NeverPinnedReaderBlocksReclamationConservatively) {
  ModelSlot<int> slot(std::make_unique<int>(1), 2);
  (void)slot.pin(0);
  slot.publish(std::make_unique<int>(2));
  (void)slot.pin(0);
  slot.reclaim();
  // Reader 1 never pinned (epoch 0): reclamation must keep everything —
  // conservative but never unsafe.
  EXPECT_EQ(slot.live_nodes(), 2u);
  (void)slot.pin(1);
  slot.reclaim();
  EXPECT_EQ(slot.live_nodes(), 1u);
}

// The TSan target for the swap protocol: a writer republishes constantly
// while readers pin and validate. Model carries a self-checking invariant
// (b must equal ~a), so a torn read — mixing fields from two versions or
// touching freed memory — fails immediately. Also checks retention stays
// bounded: superseded nodes are reclaimed while traffic flows.
TEST(ModelSlot, SwapStressNoTornReadsBoundedRetention) {
  struct Model {
    uint64_t a;
    uint64_t b;  // always ~a
  };
  constexpr int kReaders = 3;
  constexpr uint64_t kPublishes = 2000;
  ModelSlot<Model> slot(std::make_unique<Model>(Model{0, ~uint64_t{0}}),
                        kReaders);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto pinned = slot.pin(static_cast<size_t>(r));
        const Model m = *pinned.value;
        if (m.b != ~m.a) ok.store(false);            // torn or freed
        if (pinned.version < last_version) ok.store(false);  // went back
        last_version = pinned.version;
      }
    });
  }

  for (uint64_t i = 1; i <= kPublishes; ++i) {
    slot.publish(std::make_unique<Model>(Model{i, ~i}));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(slot.version(), kPublishes + 1);
  // Once every reader has re-pinned past the last publish, exactly the
  // live node remains (retention is bounded by reader progress, which the
  // joins above made certain).
  (void)slot.pin(0);
  (void)slot.pin(1);
  (void)slot.pin(2);
  slot.reclaim();
  EXPECT_EQ(slot.live_nodes(), 1u);
}

}  // namespace
}  // namespace lumen
