// pcap reader/writer tests: roundtrips, foreign byte order, corrupt files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "netio/builder.h"
#include "netio/pcap.h"

namespace lumen::netio {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "lumen_pcap_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

Trace make_trace(size_t n) {
  Trace t;
  const MacAddr a{2, 0, 0, 0, 0, 1};
  const MacAddr b{2, 0, 0, 0, 0, 2};
  for (size_t i = 0; i < n; ++i) {
    TcpOpts tcp;
    tcp.seq = static_cast<uint32_t>(i);
    t.raw.push_back(RawPacket{
        1000.0 + 0.125 * static_cast<double>(i),
        build_tcp(a, b, 0x0a000001, 0x0a000002, 1234, 80, tcp,
                  Bytes(i % 7, 0x61))});
  }
  return t;
}

TEST_F(PcapTest, WriteReadRoundtrip) {
  Trace t = make_trace(25);
  ASSERT_TRUE(write_pcap(path("a.pcap"), t).ok());
  auto rt = read_pcap(path("a.pcap"));
  ASSERT_TRUE(rt.ok()) << rt.error().message;
  const Trace& r = rt.value();
  ASSERT_EQ(r.size(), t.size());
  EXPECT_EQ(r.link, LinkType::kEthernet);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(r.raw[i].data, t.raw[i].data) << "packet " << i;
    EXPECT_NEAR(r.raw[i].ts, t.raw[i].ts, 1e-6) << "packet " << i;
  }
  // Views were parsed on read.
  ASSERT_EQ(r.view.size(), t.size());
  EXPECT_EQ(r.view[3].dst_port, 80);
}

TEST_F(PcapTest, PreservesLinkType) {
  Trace t;
  t.link = LinkType::kIeee80211;
  t.raw.push_back(RawPacket{
      1.0, build_dot11_mgmt(8, MacAddr{1, 2, 3, 4, 5, 6},
                            MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
                            MacAddr{1, 2, 3, 4, 5, 6}, {0, 0})});
  ASSERT_TRUE(write_pcap(path("w.pcap"), t).ok());
  auto rt = read_pcap(path("w.pcap"));
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().link, LinkType::kIeee80211);
  EXPECT_TRUE(rt.value().view.at(0).is_dot11);
}

TEST_F(PcapTest, RejectsBadMagic) {
  std::FILE* f = std::fopen(path("bad.pcap").c_str(), "wb");
  const char junk[32] = "this is not a pcap file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto rt = read_pcap(path("bad.pcap"));
  ASSERT_FALSE(rt.ok());
  EXPECT_NE(rt.error().message.find("magic"), std::string::npos);
}

TEST_F(PcapTest, RejectsTruncatedRecord) {
  Trace t = make_trace(3);
  ASSERT_TRUE(write_pcap(path("t.pcap"), t).ok());
  // Chop the last 5 bytes off.
  const auto full = std::filesystem::file_size(path("t.pcap"));
  std::filesystem::resize_file(path("t.pcap"), full - 5);
  auto rt = read_pcap(path("t.pcap"));
  EXPECT_FALSE(rt.ok());
}

TEST_F(PcapTest, MissingFileFailsCleanly) {
  auto rt = read_pcap(path("nope.pcap"));
  ASSERT_FALSE(rt.ok());
}

TEST_F(PcapTest, EmptyTraceRoundtrips) {
  Trace t;
  ASSERT_TRUE(write_pcap(path("e.pcap"), t).ok());
  auto rt = read_pcap(path("e.pcap"));
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE(rt.value().empty());
}

}  // namespace
}  // namespace lumen::netio
