// pcap reader/writer tests: roundtrips, foreign byte order, corrupt files.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "netio/builder.h"
#include "netio/pcap.h"

namespace lumen::netio {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "lumen_pcap_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

Trace make_trace(size_t n) {
  Trace t;
  const MacAddr a{2, 0, 0, 0, 0, 1};
  const MacAddr b{2, 0, 0, 0, 0, 2};
  for (size_t i = 0; i < n; ++i) {
    TcpOpts tcp;
    tcp.seq = static_cast<uint32_t>(i);
    t.raw.push_back(RawPacket{
        1000.0 + 0.125 * static_cast<double>(i),
        build_tcp(a, b, 0x0a000001, 0x0a000002, 1234, 80, tcp,
                  Bytes(i % 7, 0x61))});
  }
  return t;
}

TEST_F(PcapTest, WriteReadRoundtrip) {
  Trace t = make_trace(25);
  ASSERT_TRUE(write_pcap(path("a.pcap"), t).ok());
  auto rt = read_pcap(path("a.pcap"));
  ASSERT_TRUE(rt.ok()) << rt.error().message;
  const Trace& r = rt.value();
  ASSERT_EQ(r.size(), t.size());
  EXPECT_EQ(r.link, LinkType::kEthernet);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(r.raw[i].data, t.raw[i].data) << "packet " << i;
    EXPECT_NEAR(r.raw[i].ts, t.raw[i].ts, 1e-6) << "packet " << i;
  }
  // Views were parsed on read.
  ASSERT_EQ(r.view.size(), t.size());
  EXPECT_EQ(r.view[3].dst_port, 80);
}

TEST_F(PcapTest, PreservesLinkType) {
  Trace t;
  t.link = LinkType::kIeee80211;
  t.raw.push_back(RawPacket{
      1.0, build_dot11_mgmt(8, MacAddr{1, 2, 3, 4, 5, 6},
                            MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
                            MacAddr{1, 2, 3, 4, 5, 6}, {0, 0})});
  ASSERT_TRUE(write_pcap(path("w.pcap"), t).ok());
  auto rt = read_pcap(path("w.pcap"));
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().link, LinkType::kIeee80211);
  EXPECT_TRUE(rt.value().view.at(0).is_dot11);
}

TEST_F(PcapTest, RejectsBadMagic) {
  std::FILE* f = std::fopen(path("bad.pcap").c_str(), "wb");
  const char junk[32] = "this is not a pcap file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto rt = read_pcap(path("bad.pcap"));
  ASSERT_FALSE(rt.ok());
  EXPECT_NE(rt.error().message.find("magic"), std::string::npos);
}

TEST_F(PcapTest, RejectsTruncatedRecord) {
  Trace t = make_trace(3);
  ASSERT_TRUE(write_pcap(path("t.pcap"), t).ok());
  // Chop the last 5 bytes off.
  const auto full = std::filesystem::file_size(path("t.pcap"));
  std::filesystem::resize_file(path("t.pcap"), full - 5);
  auto rt = read_pcap(path("t.pcap"));
  EXPECT_FALSE(rt.ok());
}

TEST_F(PcapTest, MissingFileFailsCleanly) {
  auto rt = read_pcap(path("nope.pcap"));
  ASSERT_FALSE(rt.ok());
}

TEST_F(PcapTest, EmptyTraceRoundtrips) {
  Trace t;
  ASSERT_TRUE(write_pcap(path("e.pcap"), t).ok());
  auto rt = read_pcap(path("e.pcap"));
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE(rt.value().empty());
}

TEST_F(PcapTest, MicrosecondRoundingCarriesIntoSeconds) {
  // ts = X.9999996 rounds to 1,000,000 µs; the writer must carry into the
  // seconds field instead of wrapping to 0 (a ~1 s error before the fix).
  Trace t;
  t.raw.push_back(RawPacket{1000.9999996, build_udp(MacAddr{2, 0, 0, 0, 0, 1},
                                                    MacAddr{2, 0, 0, 0, 0, 2},
                                                    0x0a000001, 0x0a000002,
                                                    1111, 53, Bytes(4, 1))});
  ASSERT_TRUE(write_pcap(path("carry.pcap"), t).ok());
  auto rt = read_pcap(path("carry.pcap"));
  ASSERT_TRUE(rt.ok()) << rt.error().message;
  ASSERT_EQ(rt.value().size(), 1u);
  EXPECT_NEAR(rt.value().raw[0].ts, 1000.9999996, 1e-6);
}

TEST_F(PcapTest, OversizedPacketTruncatesButKeepsWireLen) {
  // Writer truncates to the advertised snaplen; reader restores the true
  // wire length so flow byte counts survive the roundtrip.
  constexpr size_t kBig = 70000;  // > 65535-byte snaplen
  Trace t = make_trace(2);
  t.raw[1].data.resize(kBig, 0x5a);
  ASSERT_TRUE(write_pcap(path("big.pcap"), t).ok());
  auto rt = read_pcap(path("big.pcap"));
  ASSERT_TRUE(rt.ok()) << rt.error().message;
  const Trace& r = rt.value();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.raw[0].orig_len, 0u);  // small packet captured whole
  EXPECT_EQ(r.raw[1].data.size(), 65535u);
  EXPECT_EQ(r.raw[1].orig_len, kBig);
  ASSERT_EQ(r.view.size(), 2u);
  EXPECT_EQ(r.view[1].wire_len, kBig);
}

TEST_F(PcapTest, RejectsBadMicrosecondField) {
  Trace t = make_trace(1);
  ASSERT_TRUE(write_pcap(path("usec.pcap"), t).ok());
  // Overwrite the record's ts_usec (header 24 + offset 4) with 2,000,000.
  std::FILE* f = std::fopen(path("usec.pcap").c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 24 + 4, SEEK_SET);
  const uint8_t bad[4] = {0x80, 0x84, 0x1e, 0x00};  // 2e6 little-endian
  std::fwrite(bad, 1, 4, f);
  std::fclose(f);
  auto rt = read_pcap(path("usec.pcap"));
  ASSERT_FALSE(rt.ok());
  EXPECT_NE(rt.error().message.find("timestamp"), std::string::npos);
}

TEST_F(PcapTest, RejectsUnknownLinkType) {
  Trace t = make_trace(1);
  ASSERT_TRUE(write_pcap(path("link.pcap"), t).ok());
  // Overwrite the global header's link-type field (offset 20) with 228.
  std::FILE* f = std::fopen(path("link.pcap").c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 20, SEEK_SET);
  const uint8_t bad[4] = {228, 0, 0, 0};
  std::fwrite(bad, 1, 4, f);
  std::fclose(f);
  auto rt = read_pcap(path("link.pcap"));
  ASSERT_FALSE(rt.ok());
  EXPECT_NE(rt.error().message.find("link type"), std::string::npos);
}

TEST_F(PcapTest, RoundtripPropertyRandomTimestampsAndLengths) {
  // Property test over random captures: timestamps (including the
  // microsecond-carry edge) roundtrip to within 1 µs, payload bytes
  // roundtrip exactly up to snaplen, and wire lengths always survive.
  Rng rng(20260806);
  const MacAddr a{2, 0, 0, 0, 0, 1};
  const MacAddr b{2, 0, 0, 0, 0, 2};
  for (int iter = 0; iter < 8; ++iter) {
    Trace t;
    const size_t n = 1 + rng.below(20);
    double ts = 1e9 * rng.uniform();
    for (size_t i = 0; i < n; ++i) {
      // One in four packets sits on the carry edge; one in eight exceeds
      // the snaplen.
      ts += rng.bernoulli(0.25) ? (0.9999994 + 1e-7 * rng.below(6))
                                : rng.uniform(0.0, 2.0);
      const size_t payload = rng.bernoulli(0.125)
                                 ? 66000 + rng.below(4000)
                                 : rng.below(1200);
      t.raw.push_back(RawPacket{
          ts, build_udp(a, b, 0x0a000001, 0x0a000002, 1024, 53,
                        Bytes(payload, static_cast<uint8_t>(i)))});
    }
    ASSERT_TRUE(write_pcap(path("prop.pcap"), t).ok());
    auto rt = read_pcap(path("prop.pcap"));
    ASSERT_TRUE(rt.ok()) << rt.error().message;
    const Trace& r = rt.value();
    ASSERT_EQ(r.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      EXPECT_NEAR(r.raw[i].ts, t.raw[i].ts, 1e-6) << "iter " << iter
                                                  << " packet " << i;
      const size_t want = std::min<size_t>(t.raw[i].data.size(), 65535);
      ASSERT_EQ(r.raw[i].data.size(), want);
      EXPECT_TRUE(std::equal(r.raw[i].data.begin(), r.raw[i].data.end(),
                             t.raw[i].data.begin()));
      EXPECT_EQ(r.raw[i].wire_len(), t.raw[i].data.size());
    }
  }
}

}  // namespace
}  // namespace lumen::netio
