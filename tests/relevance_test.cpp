// Feature-relevance tests (§6 "understanding relevant features").
#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/relevance.h"

namespace lumen::eval {
namespace {

/// Table where only column 0 carries the class signal.
features::FeatureTable signal_in_first_column(uint64_t seed) {
  features::FeatureTable t =
      features::FeatureTable::make(400, {"signal", "noise1", "noise2"});
  Rng rng(seed);
  for (size_t r = 0; r < t.rows; ++r) {
    const int label = rng.bernoulli(0.35) ? 1 : 0;
    t.at(r, 0) = rng.normal(label * 4.0, 1.0);
    t.at(r, 1) = rng.normal(0.0, 1.0);
    t.at(r, 2) = rng.uniform(0.0, 1.0);
    t.labels[r] = label;
    t.attack[r] = label != 0 ? 3 : 0;
  }
  return t;
}

TEST(ForestImportance, RanksSignalFirst) {
  const auto table = signal_in_first_column(31);
  const auto ranked = forest_importance(table);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].feature, "signal");
  EXPECT_GT(ranked[0].score, ranked[1].score);
  // Normalized to one.
  double sum = 0.0;
  for (const auto& f : ranked) sum += f.score;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AttackSeparation, CohensDOnKnownShift) {
  const auto table = signal_in_first_column(37);
  const auto ranked =
      attack_separation(table, static_cast<trace::AttackType>(3));
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].feature, "signal");
  // d = 4 sigma separation.
  EXPECT_NEAR(ranked[0].score, 4.0, 0.5);
  EXPECT_LT(ranked[1].score, 0.5);
}

TEST(AttackSeparation, AbsentAttackScoresZero) {
  const auto table = signal_in_first_column(41);
  const auto ranked =
      attack_separation(table, static_cast<trace::AttackType>(9));
  for (const auto& f : ranked) EXPECT_EQ(f.score, 0.0);
}

TEST(PerAttackRelevance, RealPipelineReportsSensibleFeatures) {
  Benchmark::Options opts;
  opts.dataset_scale = 0.2;
  Benchmark bench(opts);
  auto reports = per_attack_relevance(bench, "A10", "F1", 3);
  ASSERT_TRUE(reports.ok()) << reports.error().message;
  ASSERT_FALSE(reports.value().empty());
  for (const auto& rep : reports.value()) {
    EXPECT_NE(rep.attack, trace::AttackType::kNone);
    ASSERT_LE(rep.top.size(), 3u);
    ASSERT_FALSE(rep.top.empty());
    // Ranked descending.
    for (size_t i = 1; i < rep.top.size(); ++i) {
      EXPECT_GE(rep.top[i - 1].score, rep.top[i].score);
    }
  }
  // The paper's Q4 note: for DoS, rate/flag-churn features should rank
  // highly for the smartdet feature set. Check for at least one of them
  // in the Hulk report's top features.
  for (const auto& rep : reports.value()) {
    if (rep.attack != trace::AttackType::kDosHulk) continue;
    bool found = false;
    for (const auto& f : rep.top) {
      found |= f.feature.find("rate") != std::string::npos ||
               f.feature.find("tcpflags") != std::string::npos ||
               f.feature.find("count") != std::string::npos ||
               f.feature.find("entropy") != std::string::npos;
    }
    EXPECT_TRUE(found);
  }
}

TEST(PerAttackRelevance, IncompatiblePairErrors) {
  Benchmark::Options opts;
  opts.dataset_scale = 0.2;
  Benchmark bench(opts);
  EXPECT_FALSE(per_attack_relevance(bench, "A14", "P1", 3).ok());
}

}  // namespace
}  // namespace lumen::eval
