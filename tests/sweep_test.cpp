// Determinism contract of the parallel evaluation sweep: running the grid
// across the pool must produce a ResultStore whose CSV is byte-identical to
// the fully-serial sweep, even though workers race through shared caches and
// the ML kernels run their own parallel loops in the serial case.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "common/parallel.h"
#include "eval/sweep.h"

namespace lumen::eval {
namespace {

// Force a multi-worker global pool even on single-core CI hosts so the
// parallel side of the comparison actually runs concurrently.
[[maybe_unused]] const bool kForceThreads = [] {
  setenv("LUMEN_THREADS", "4", /*overwrite=*/0);
  setenv("LUMEN_THREADS_FORCE", "1", /*overwrite=*/0);
  return true;
}();

Benchmark::Options reduced_options() {
  Benchmark::Options opts;
  opts.dataset_scale = 0.15;  // reduced grid: keep the suite fast
  opts.max_train_rows = 600;
  opts.max_test_rows = 600;
  return opts;
}

std::string store_csv_bytes(const ResultStore& store, const char* name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  EXPECT_TRUE(store.save_csv(path).ok());
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  std::filesystem::remove(path);
  return ss.str();
}

// 2 algos x 3 datasets: a supervised forest pipeline and a Bayes pipeline,
// restricted to connection datasets they both run on.
const std::vector<std::string> kAlgos = {"A13", "A14"};
const std::vector<std::string> kDatasets = {"F4", "F5", "F7"};

class GridBenchmark : public Benchmark {
 public:
  GridBenchmark() : Benchmark(reduced_options()) {}
};

std::vector<std::pair<std::string, std::string>> reduced_pairs() {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const auto& a : kAlgos) {
    for (const auto& d : kDatasets) pairs.emplace_back(a, d);
  }
  return pairs;
}

void run_reduced_same_dataset(Benchmark& bench, ResultStore& store,
                              bool parallel) {
  const auto pairs = reduced_pairs();
  std::vector<std::optional<Result<Benchmark::RunOutput>>> runs(pairs.size());
  auto evaluate = [&](size_t i) {
    runs[i].emplace(bench.same_dataset(pairs[i].first, pairs[i].second));
  };
  if (parallel) {
    parallel_for(0, pairs.size(), evaluate, /*min_parallel=*/1);
  } else {
    for (size_t i = 0; i < pairs.size(); ++i) evaluate(i);
  }
  for (auto& run : runs) {
    ASSERT_TRUE(run->ok()) << run->error().message;
    store.add_record(run->value().record);
  }
}

TEST(SweepDeterminism, ParallelSameDatasetCsvIsByteIdenticalToSerial) {
  ASSERT_GT(ThreadPool::global().size(), 1u);

  GridBenchmark serial_bench;
  ResultStore serial_store;
  {
    SerialGuard guard;  // true serial baseline: no pool anywhere
    run_reduced_same_dataset(serial_bench, serial_store, /*parallel=*/false);
  }

  GridBenchmark parallel_bench;  // fresh caches: recompute everything
  ResultStore parallel_store;
  run_reduced_same_dataset(parallel_bench, parallel_store, /*parallel=*/true);

  ASSERT_GT(serial_store.size(), 0u);
  EXPECT_EQ(serial_store.size(), parallel_store.size());
  EXPECT_EQ(store_csv_bytes(serial_store, "lumen_sweep_serial.csv"),
            store_csv_bytes(parallel_store, "lumen_sweep_parallel.csv"));
}

TEST(SweepDeterminism, SweepHelperMatchesSerialHelper) {
  const std::vector<std::string> algos = {"A14"};
  GridBenchmark serial_bench;
  ResultStore serial_store;
  {
    SerialGuard guard;
    sweep_cross_dataset(serial_bench, algos, serial_store,
                        /*parallel=*/false);
  }

  GridBenchmark parallel_bench;
  ResultStore parallel_store;
  sweep_cross_dataset(parallel_bench, algos, parallel_store);

  ASSERT_GT(serial_store.size(), 0u);
  EXPECT_EQ(store_csv_bytes(serial_store, "lumen_cross_serial.csv"),
            store_csv_bytes(parallel_store, "lumen_cross_parallel.csv"));
}

TEST(SweepDeterminism, ConcurrentSameKeyRunsShareOneComputation) {
  // Hammer one (algo, dataset) pair from many workers: the memoized caches
  // must hand every caller the same feature table pointer.
  GridBenchmark bench;
  std::vector<const FeatureTable*> seen(16, nullptr);
  parallel_for(
      0, seen.size(),
      [&](size_t i) {
        auto feats = bench.features("A14", "F4");
        ASSERT_TRUE(feats.ok());
        seen[i] = feats.value();
      },
      /*min_parallel=*/1);
  for (const FeatureTable* p : seen) EXPECT_EQ(p, seen[0]);
}

}  // namespace
}  // namespace lumen::eval
