// Flow/connection assembly tests over hand-crafted traces.
#include <gtest/gtest.h>

#include "flow/flow.h"
#include "netio/builder.h"
#include "netio/parse.h"

namespace lumen::flow {
namespace {

using namespace lumen::netio;

const MacAddr kMacA{2, 0, 0, 0, 0, 1};
const MacAddr kMacB{2, 0, 0, 0, 0, 2};
constexpr uint32_t kIpA = 0x0a000001;
constexpr uint32_t kIpB = 0x0a000002;

void push_tcp(Trace& t, double ts, uint32_t sip, uint32_t dip, uint16_t sp,
              uint16_t dp, uint8_t flags, size_t payload = 0) {
  TcpOpts o;
  o.flags = flags;
  t.raw.push_back(RawPacket{
      ts, build_tcp(kMacA, kMacB, sip, dip, sp, dp, o, Bytes(payload, 'x'))});
}

Trace finish(Trace t) {
  parse_trace(t);
  return t;
}

TEST(UniFlows, SeparatesDirectionsAndTuples) {
  Trace t;
  push_tcp(t, 0.0, kIpA, kIpB, 1000, 80, kSyn);
  push_tcp(t, 0.1, kIpB, kIpA, 80, 1000, kSyn | kAck);
  push_tcp(t, 0.2, kIpA, kIpB, 1000, 80, kAck);
  push_tcp(t, 0.3, kIpA, kIpB, 2000, 80, kSyn);  // different sport
  t = finish(std::move(t));
  const std::vector<Flow> flows = assemble_uniflows(t);
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0].pkts.size(), 2u);  // A->B :1000
  EXPECT_EQ(flows[1].pkts.size(), 1u);  // B->A
  EXPECT_EQ(flows[2].pkts.size(), 1u);  // A->B :2000
  EXPECT_EQ(flows[0].key.src_port, 1000);
  EXPECT_EQ(flows[1].key.src_ip, kIpB);
}

TEST(UniFlows, TimeoutSplitsFlows) {
  Trace t;
  push_tcp(t, 0.0, kIpA, kIpB, 1000, 80, kAck);
  push_tcp(t, 100.0, kIpA, kIpB, 1000, 80, kAck);  // idle > 60s default
  t = finish(std::move(t));
  EXPECT_EQ(assemble_uniflows(t).size(), 2u);
  EXPECT_EQ(assemble_uniflows(t, 200.0).size(), 1u);
}

TEST(UniFlows, SkipsNonIpPackets) {
  Trace t;
  t.raw.push_back(RawPacket{
      0.0, build_arp(kMacA, kMacB, 1, kMacA, kIpA, kMacB, kIpB)});
  push_tcp(t, 0.1, kIpA, kIpB, 1, 2, kAck);
  t = finish(std::move(t));
  EXPECT_EQ(assemble_uniflows(t).size(), 1u);
}

TEST(Connections, PairsBothDirections) {
  Trace t;
  push_tcp(t, 0.0, kIpA, kIpB, 1000, 80, kSyn);
  push_tcp(t, 0.1, kIpB, kIpA, 80, 1000, kSyn | kAck);
  push_tcp(t, 0.2, kIpA, kIpB, 1000, 80, kAck, 10);
  push_tcp(t, 0.3, kIpB, kIpA, 80, 1000, kAck, 20);
  t = finish(std::move(t));
  const std::vector<Connection> conns = assemble_connections(t);
  ASSERT_EQ(conns.size(), 1u);
  const Connection& c = conns[0];
  EXPECT_EQ(c.orig_key.src_ip, kIpA);  // initiator = first packet's source
  EXPECT_EQ(c.orig_pkts, 2u);
  EXPECT_EQ(c.resp_pkts, 2u);
  EXPECT_GT(c.resp_bytes, 0u);
  ASSERT_EQ(c.dir.size(), 4u);
  EXPECT_EQ(c.dir[0], 0);
  EXPECT_EQ(c.dir[1], 1);
}

TEST(Connections, StateSF) {
  Trace t;
  push_tcp(t, 0.0, kIpA, kIpB, 1000, 80, kSyn);
  push_tcp(t, 0.1, kIpB, kIpA, 80, 1000, kSyn | kAck);
  push_tcp(t, 0.2, kIpA, kIpB, 1000, 80, kAck);
  push_tcp(t, 0.3, kIpA, kIpB, 1000, 80, kFin | kAck);
  push_tcp(t, 0.4, kIpB, kIpA, 80, 1000, kFin | kAck);
  t = finish(std::move(t));
  const auto conns = assemble_connections(t);
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(summarize(conns[0], t).state, ConnState::kSF);
}

TEST(Connections, StateS0AndREJ) {
  Trace t;
  push_tcp(t, 0.0, kIpA, kIpB, 1000, 80, kSyn);  // unanswered
  push_tcp(t, 200.0, kIpA, kIpB, 1001, 80, kSyn);
  push_tcp(t, 200.1, kIpB, kIpA, 80, 1001, kRst | kAck);  // rejected
  t = finish(std::move(t));
  const auto conns = assemble_connections(t);
  ASSERT_EQ(conns.size(), 2u);
  EXPECT_EQ(summarize(conns[0], t).state, ConnState::kS0);
  EXPECT_EQ(summarize(conns[1], t).state, ConnState::kREJ);
}

TEST(Connections, RetransmissionsCounted) {
  Trace t;
  // Same data-bearing seq twice in the same direction.
  TcpOpts o;
  o.flags = kPsh | kAck;
  o.seq = 555;
  t.raw.push_back(RawPacket{0.0, build_tcp(kMacA, kMacB, kIpA, kIpB, 1, 2, o,
                                           Bytes(10, 'a'))});
  t.raw.push_back(RawPacket{0.1, build_tcp(kMacA, kMacB, kIpA, kIpB, 1, 2, o,
                                           Bytes(10, 'a'))});
  t = finish(std::move(t));
  const auto conns = assemble_connections(t);
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(summarize(conns[0], t).retransmissions, 1u);
}

TEST(Connections, ServiceDetection) {
  Trace t;
  t.raw.push_back(RawPacket{
      0.0, build_udp(kMacA, kMacB, kIpA, kIpB, 40000, 53,
                     payload_dns_query(1, "x.com"))});
  t = finish(std::move(t));
  const auto conns = assemble_connections(t);
  ASSERT_EQ(conns.size(), 1u);
  const ConnRecord rec = summarize(conns[0], t);
  EXPECT_EQ(rec.service, AppProto::kDns);
  EXPECT_EQ(rec.proto, 17);
  EXPECT_EQ(rec.state, ConnState::kOTH);  // non-TCP
}

TEST(UnitLabel, MajorityWithTieBreakMalicious) {
  const std::vector<uint32_t> pkts = {0, 1, 2, 3};
  const std::vector<uint8_t> labels = {1, 1, 0, 0};
  const std::vector<uint8_t> attacks = {3, 3, 0, 0};
  uint8_t attack = 0;
  EXPECT_EQ(unit_label(pkts, labels, attacks, &attack), 1);  // tie -> 1
  EXPECT_EQ(attack, 3);
}

TEST(UnitLabel, MinorityMaliciousStaysBenign) {
  const std::vector<uint32_t> pkts = {0, 1, 2, 3};
  const std::vector<uint8_t> labels = {1, 0, 0, 0};
  const std::vector<uint8_t> attacks = {5, 0, 0, 0};
  uint8_t attack = 9;
  EXPECT_EQ(unit_label(pkts, labels, attacks, &attack), 0);
  EXPECT_EQ(attack, 0);  // benign units carry no attack tag
}

TEST(UnitLabel, DominantAttackWins) {
  const std::vector<uint32_t> pkts = {0, 1, 2};
  const std::vector<uint8_t> labels = {1, 1, 1};
  const std::vector<uint8_t> attacks = {2, 7, 7};
  uint8_t attack = 0;
  EXPECT_EQ(unit_label(pkts, labels, attacks, &attack), 1);
  EXPECT_EQ(attack, 7);
}

}  // namespace
}  // namespace lumen::flow
