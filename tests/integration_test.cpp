// Cross-module integration tests: full algorithm runs through the engine's
// template path, a miniature benchmark sweep, per-attack score consistency,
// and the synthesizer wired to the benchmark.
#include <gtest/gtest.h>

#include "eval/benchmark.h"
#include "eval/results.h"
#include "eval/synthesis.h"
#include "ml/metrics.h"

namespace lumen {
namespace {

eval::Benchmark& bench() {
  static eval::Benchmark b = [] {
    eval::Benchmark::Options opts;
    opts.dataset_scale = 0.2;
    opts.max_train_rows = 800;
    opts.max_test_rows = 800;
    return eval::Benchmark(opts);
  }();
  return b;
}

TEST(Integration, FullTemplatePathForEveryRegistryAlgorithm) {
  // Run feature template + model + train + predict + evaluate entirely
  // through the engine's template language for every algorithm.
  for (const core::AlgorithmDef& algo : core::algorithm_registry()) {
    const std::string ds_id =
        algo.granularity == trace::Granularity::kPacket
            ? (algo.needs_app_metadata ? "P0" : (algo.needs_ip ? "P1" : "P2"))
            : "F4";
    const trace::Dataset& ds = bench().dataset(ds_id);

    // Extend the feature template with the model/train/predict/evaluate
    // stages programmatically (same JSON entries a template author writes).
    const size_t eq = algo.feature_template.find('[');
    ASSERT_NE(eq, std::string::npos) << algo.id;
    auto parsed = core::Json::parse(
        std::string_view(algo.feature_template).substr(eq));
    ASSERT_TRUE(parsed.ok()) << algo.id << ": " << parsed.error().message;
    core::Json pipeline = std::move(parsed).value();

    auto model_entry = core::Json::parse(algo.model_spec);
    ASSERT_TRUE(model_entry.ok()) << algo.id;
    core::Json model_json = std::move(model_entry).value();
    model_json.set("func", core::Json::string("model"));
    model_json.set("output", core::Json::string("clf"));
    pipeline.push_back(std::move(model_json));

    auto entry = [](const char* text) {
      auto r = core::Json::parse(text);
      EXPECT_TRUE(r.ok());
      return r.value();
    };
    pipeline.push_back(entry(
        R"({"func": "train", "input": ["clf", "Features"], "output": "trained"})"));
    pipeline.push_back(entry(
        R"({"func": "predict", "input": ["trained", "Features"], "output": "preds"})"));
    pipeline.push_back(entry(
        R"({"func": "evaluate", "input": ["preds"], "output": "metrics"})"));

    auto spec = core::PipelineSpec::from_json(pipeline);
    ASSERT_TRUE(spec.ok()) << algo.id << ": " << spec.error().message;
    core::OpContext ctx;
    ctx.dataset = &ds;
    auto report = core::Engine().run(spec.value(), ctx);
    ASSERT_TRUE(report.ok()) << algo.id << ": " << report.error().message;
    const core::Metrics* m = report.value().get<core::Metrics>("metrics");
    ASSERT_NE(m, nullptr) << algo.id;
    EXPECT_GE(m->get("accuracy"), 0.0);
    EXPECT_LE(m->get("accuracy"), 1.0);
  }
}

TEST(Integration, MiniBenchmarkSweepIsConsistent) {
  eval::ResultStore store;
  const std::vector<std::string> algos = {"A13", "A14", "A15"};
  const std::vector<std::string> sets = {"F4", "F6", "F9"};
  for (const std::string& a : algos) {
    for (const std::string& train : sets) {
      for (const std::string& test : sets) {
        auto run = train == test ? bench().same_dataset(a, train)
                                 : bench().cross_dataset(a, train, test);
        ASSERT_TRUE(run.ok()) << a << " " << train << "->" << test << ": "
                              << run.error().message;
        store.add_record(run.value().record);
        // Metrics are internally consistent with the raw predictions.
        const auto& p = run.value().predictions;
        const ml::Confusion c = ml::confusion(p.y_true, p.y_pred);
        EXPECT_DOUBLE_EQ(run.value().record.precision, ml::precision(c));
        EXPECT_DOUBLE_EQ(run.value().record.recall, ml::recall(c));
      }
    }
  }
  // 3 algos x 9 pairs x 5 metrics.
  EXPECT_EQ(store.size(), 3u * 9u * 5u);
  // Store values queryable per pair.
  EXPECT_TRUE(store.value("A14", "F4", "F6", "precision").has_value());
}

TEST(Integration, SameDatasetRunsAreCachedAndRepeatable) {
  auto r1 = bench().same_dataset("A14", "F4");
  auto r2 = bench().same_dataset("A14", "F4");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().predictions.y_pred, r2.value().predictions.y_pred);
  EXPECT_DOUBLE_EQ(r1.value().record.precision, r2.value().record.precision);
}

TEST(Integration, PerAttackAggregatesMatchManualComputation) {
  auto run = bench().same_dataset("A14", "F4");
  ASSERT_TRUE(run.ok());
  const auto scores = bench().per_attack(run.value());
  ASSERT_FALSE(scores.empty());
  for (const eval::AttackScore& s : scores) {
    // Recompute by hand from the predictions.
    const auto& p = run.value().predictions;
    size_t tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < p.y_true.size(); ++i) {
      const bool benign = p.y_true[i] == 0;
      const bool mine = !benign && p.attack[i] == static_cast<uint8_t>(s.attack);
      if (mine && p.y_pred[i] != 0) ++tp;
      if (mine && p.y_pred[i] == 0) ++fn;
      if (benign && p.y_pred[i] != 0) ++fp;
    }
    const double prec =
        tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0.0;
    const double rec =
        tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                    : 0.0;
    EXPECT_NEAR(s.precision, prec, 1e-12);
    EXPECT_NEAR(s.recall, rec, 1e-12);
  }
}

TEST(Integration, CrossDatasetFeatureColumnsAlign) {
  // Cross-dataset evaluation requires train and test tables to share a
  // column layout for every algorithm.
  for (const char* algo : {"A07", "A10", "A13", "A14", "A15"}) {
    auto a = bench().features(algo, "F4");
    auto b = bench().features(algo, "F6");
    ASSERT_TRUE(a.ok() && b.ok()) << algo;
    EXPECT_EQ(a.value()->col_names, b.value()->col_names) << algo;
  }
}

TEST(Integration, SynthesizedWinnerRunsThroughBenchmark) {
  eval::SynthOptions opts;
  opts.datasets = {"F4", "F9"};
  opts.blocks = {"zeek", "iiot"};
  opts.models = {"GaussianNB"};
  const eval::SynthResult result = eval::synthesize(bench(), opts);
  // The winner's rendered AlgorithmDef evaluates under the same protocol.
  const double again = eval::score_candidate(bench(), result.candidate,
                                             opts.datasets, opts.metric);
  EXPECT_DOUBLE_EQ(again, result.score);
}

TEST(Integration, MergedTrainingSmallerThanConcatOfAll) {
  auto run = bench().merged_training("A14", 0.1);
  ASSERT_TRUE(run.ok()) << run.error().message;
  // 10% merged training set must be far smaller than the sum of all sets.
  size_t total = 0;
  for (const std::string& ds : trace::connection_dataset_ids()) {
    auto f = bench().features("A14", ds);
    if (f.ok()) total += f.value()->rows;
  }
  EXPECT_LT(run.value().record.n_train, total / 4);
  EXPECT_GT(run.value().record.n_train, 0u);
}

}  // namespace
}  // namespace lumen
