// Template-language JSON parser tests, including the Python-ish tolerances
// (single quotes, None, trailing commas) the paper's Fig. 4 examples use.
#include <gtest/gtest.h>

#include "core/json.h"

namespace lumen::core {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_TRUE(Json::parse("None").value().is_null());
  EXPECT_TRUE(Json::parse("true").value().as_bool());
  EXPECT_FALSE(Json::parse("False").value().as_bool(true));
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").value().as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").value().as_string(), "hi");
}

TEST(Json, SingleQuotedStrings) {
  auto r = Json::parse("{'func': 'Field Extract'}");
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().get_string("func"), "Field Extract");
}

TEST(Json, TrailingCommas) {
  auto arr = Json::parse("[1, 2, 3,]");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(arr.value().size(), 3u);
  auto obj = Json::parse("{\"a\": 1,}");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj.value().get_int("a"), 1);
}

TEST(Json, Comments) {
  auto r = Json::parse("[1, # inline comment\n 2]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(Json, NestedStructures) {
  auto r = Json::parse(R"({"list": [{"field": "len", "funcs": ["mean"]}]})");
  ASSERT_TRUE(r.ok());
  const Json* list = r.value().get("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ(list->items()[0].get_string("field"), "len");
}

TEST(Json, EscapeSequences) {
  auto r = Json::parse(R"("a\nb\t\"c\"")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().as_string(), "a\nb\t\"c\"");
}

TEST(Json, ErrorsCarryPosition) {
  auto r = Json::parse("{\n  \"a\": blorp\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(Json, RejectsTrailingContent) {
  EXPECT_FALSE(Json::parse("[1] junk").ok());
}

TEST(Json, RejectsUnterminated) {
  EXPECT_FALSE(Json::parse("[1, 2").ok());
  EXPECT_FALSE(Json::parse("{\"a\": 1").ok());
  EXPECT_FALSE(Json::parse("\"abc").ok());
}

TEST(Json, TypedGettersWithDefaults) {
  auto r = Json::parse(R"({"s": "x", "n": 3, "b": true, "l": ["a", "b"]})");
  ASSERT_TRUE(r.ok());
  const Json& j = r.value();
  EXPECT_EQ(j.get_string("s"), "x");
  EXPECT_EQ(j.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(j.get_int("n"), 3);
  EXPECT_EQ(j.get_int("missing", -1), -1);
  EXPECT_TRUE(j.get_bool("b"));
  EXPECT_EQ(j.get_string_list("l").size(), 2u);
  // A scalar string is promoted to a one-element list.
  auto r2 = Json::parse(R"({"l": "only"})");
  EXPECT_EQ(r2.value().get_string_list("l").size(), 1u);
}

TEST(Json, DumpParseRoundtrip) {
  const std::string text =
      R"({"func":"groupby","input":["Packets"],"n":2.5,"flag":true,"nil":null})";
  auto r = Json::parse(text);
  ASSERT_TRUE(r.ok());
  auto r2 = Json::parse(r.value().dump());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r.value().dump(), r2.value().dump());
}

TEST(Json, SetReplacesExistingKey) {
  Json obj = Json::object();
  obj.set("k", Json::number(1));
  obj.set("k", Json::number(2));
  EXPECT_EQ(obj.get_int("k"), 2);
  EXPECT_EQ(obj.size(), 1u);
}

TEST(Json, ParsesThePaperTemplateStyle) {
  // Close to the paper's Fig. 4 (Python-ish literals).
  const char* tpl = R"([
    {
      'func': 'Field Extract',
      'input': None,
      'output': 'Packets',
      'param': ['srcIP', 'dstIP', 'TCPFlags', 'packetLength'],
    },
    {
      'func': 'Groupby',
      'input': ['Packets'],
      'output': 'Grouped_packets',
      'flowid': ['srcIp'],
    },
  ])";
  auto r = Json::parse(tpl);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value().items()[1].get_string_list("flowid")[0], "srcIp");
}

}  // namespace
}  // namespace lumen::core
