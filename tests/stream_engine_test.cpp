// Streaming operator engine tests: compile_streaming must lower the same
// PipelineSpec the batch Engine runs, and — for the supported subset with
// time_slice align="global" — the per-epoch rows, scores, and alert sets a
// chain emits must be bit-identical to the batch run over the same packets
// (the batch engine is the oracle). Also covers lowering diagnostics for
// batch-only ops, reset determinism, the IngestRuntime pipeline sink mode,
// and bounded group state over a looping replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/ingest.h"
#include "core/stream_op.h"
#include "features/transform.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace lumen::core {
namespace {

using features::FeatureTable;

/// Copy packets [begin, end) of `ds` into a standalone dataset, remapping
/// the label arrays so label_at(j) in the slice equals label_at(begin + j)
/// in the original. The slice is re-parsed, so its views are self-contained
/// (view[j].index == j — nothing in these captures fails to parse twice).
trace::Dataset slice_dataset(const trace::Dataset& ds, size_t begin,
                             size_t end) {
  trace::Dataset out;
  out.id = ds.id + "-slice";
  out.standin = ds.standin;
  out.label_granularity = ds.label_granularity;
  out.trace.link = ds.trace.link;
  for (size_t j = begin; j < end; ++j) {
    out.trace.raw.push_back(ds.trace.raw[j]);
    out.pkt_label.push_back(ds.label_at(j));
    out.pkt_attack.push_back(ds.attack_at(j));
  }
  EXPECT_EQ(netio::parse_trace(out.trace), 0u);
  return out;
}

// The windowed feature pipeline both engines run: group by source MAC
// (meaningful on both the Ethernet and the 802.11 captures), tumbling
// globally-aligned windows, and an aggregate list that exercises
// every streaming-supported func family (series stats, distinct/entropy,
// and the unit-level count/rate/duration/bytes_rate).
constexpr const char* kAggList = R"([
      {"field": "len", "funcs": ["mean", "std", "min", "max", "sum",
                                 "distinct", "entropy"]},
      {"field": "iat", "funcs": ["mean", "std"]},
      {"funcs": ["count", "rate", "duration", "bytes_rate"]}])";

std::string windowed_prefix(double window) {
  return std::string(R"(
    {"func": "field_extract", "input": None, "output": "P",
     "param": ["srcIP", "packetLength"]},
    {"func": "filter", "input": ["P"], "output": "PF", "require": ["len"]},
    {"func": "groupby", "input": ["PF"], "output": "G", "flowid": ["srcmac"]},
    {"func": "time_slice", "input": ["G"], "output": "W", "window": )") +
         std::to_string(window) + R"(, "align": "global"},
    {"func": "apply_aggregates", "input": ["W"], "output": "F", "list": )" +
         kAggList + "},";
}

PipelineSpec parse_spec(const std::string& text) {
  auto spec = PipelineSpec::parse("[" + text + "]");
  EXPECT_TRUE(spec.ok()) << spec.error().message;
  return std::move(spec).value();
}

/// Batch-train a KitNET (with train-frozen normalization) on the windowed
/// features of `train` and return the trained ModelValue.
ModelValue train_windowed_model(const trace::Dataset& train, double window) {
  PipelineSpec spec = parse_spec(windowed_prefix(window) + R"(
    {"func": "model", "input": None, "output": "M0", "model_type": "KitNET",
     "normalize": true},
    {"func": "train", "input": ["M0", "F"], "output": "Model"},
  )");
  Engine::Options eopts;
  eopts.registry = nullptr;
  OpContext ctx;
  ctx.dataset = &train;
  auto report = Engine(eopts).run(spec, ctx);
  EXPECT_TRUE(report.ok()) << report.error().message;
  const ModelValue* mv = report.value().get<ModelValue>("Model");
  EXPECT_NE(mv, nullptr);
  return *mv;
}

double capture_span(const trace::Dataset& ds) {
  return ds.trace.view.empty()
             ? 0.0
             : ds.trace.view.back().ts - ds.trace.view.front().ts;
}

/// One collected streaming row: the raw aggregate values plus its score
/// and prediction (when the chain ends in predict).
struct StreamRow {
  std::vector<double> vals;
  double score = 0.0;
  int pred = 0;
  uint64_t epoch = 0;
};

/// Push every parsed packet of `ds` through `chain` and collect its rows
/// keyed by the emitted unit key ("<srcip>#w<k>").
std::map<std::string, StreamRow> run_chain(StreamPipeline& chain,
                                           const trace::Dataset& ds) {
  std::map<std::string, StreamRow> rows;
  chain.set_callback([&rows](EpochBatch&& b) {
    for (size_t r = 0; r < b.table.rows; ++r) {
      StreamRow row;
      row.vals.assign(b.table.row(r).begin(), b.table.row(r).end());
      if (b.scored) {
        row.score = b.scores[r];
        row.pred = b.predictions[r];
      }
      row.epoch = b.epoch;
      EXPECT_TRUE(rows.emplace(b.keys[r], std::move(row)).second)
          << "duplicate key " << b.keys[r];
    }
  });
  for (const auto& v : ds.trace.view) chain.push(v);
  chain.finish();
  return rows;
}

// The acceptance test: a group-by + time-slice + aggregate + model-scoring
// spec runs continuously through the streaming engine, and every per-epoch
// aggregate, score, and alert is bit-identical to the batch Engine's run
// over the same capture with the same seeded model.
TEST(StreamingGolden, MatchesBatchEngineBitForBitAcrossCaptures) {
  size_t total_alerts = 0;
  for (const char* id : {"P1", "P2", "P3", "P4"}) {
    SCOPED_TRACE(id);
    const trace::Dataset ds = trace::make_dataset(id, 0.2);
    const size_t grace = ds.trace.view.size() * 45 / 100;
    ASSERT_GT(grace, 100u);
    const trace::Dataset train = slice_dataset(ds, 0, grace);
    const trace::Dataset dep = slice_dataset(ds, grace, ds.trace.view.size());
    const double window = capture_span(dep) / 8.0;
    ASSERT_GT(window, 0.0);

    const ModelValue model = train_windowed_model(train, window);
    PipelineSpec deploy = parse_spec(windowed_prefix(window) + R"(
      {"func": "predict", "input": ["Model", "F"], "output": "Preds"},
    )");

    // Batch oracle: run the same spec with the trained model seeded in,
    // keeping the windowed grouping so rows can be matched by unit key.
    std::map<std::string, Value> seed;
    seed.emplace("Model", model);
    Engine::Options eopts;
    eopts.registry = nullptr;
    eopts.keep = {"W", "F"};
    OpContext ctx;
    ctx.dataset = &dep;
    auto report = Engine(eopts).run(deploy, ctx, &seed);
    ASSERT_TRUE(report.ok()) << report.error().message;
    const GroupedPackets* W = report.value().get<GroupedPackets>("W");
    const FeatureTable* F = report.value().get<FeatureTable>("F");
    const Predictions* P = report.value().get<Predictions>("Preds");
    ASSERT_NE(W, nullptr);
    ASSERT_NE(F, nullptr);
    ASSERT_NE(P, nullptr);
    ASSERT_EQ(W->groups.size(), F->rows);
    ASSERT_EQ(P->scores.size(), F->rows);

    // Streaming path over the identical packet sequence.
    StreamingOptions sopts;
    sopts.bindings.emplace("Model", model);
    auto chain = compile_streaming(deploy, std::move(sopts));
    ASSERT_TRUE(chain.ok()) << chain.error().message;
    const std::map<std::string, StreamRow> srows =
        run_chain(*chain.value(), dep);

    // Same unit population, same values, same scores, same alerts — all
    // compared with EXPECT_EQ on doubles (bit-identical, not merely close).
    ASSERT_EQ(srows.size(), F->rows);
    size_t batch_alerts = 0, stream_alerts = 0;
    for (size_t r = 0; r < F->rows; ++r) {
      const std::string& key = W->groups[r].key;
      const auto it = srows.find(key);
      ASSERT_NE(it, srows.end()) << "missing streaming row for " << key;
      ASSERT_EQ(it->second.vals.size(), F->cols);
      for (size_t c = 0; c < F->cols; ++c) {
        EXPECT_EQ(it->second.vals[c], F->at(r, c))
            << key << " col " << F->col_names[c];
      }
      EXPECT_EQ(it->second.score, P->scores[r]) << key;
      EXPECT_EQ(it->second.pred, P->y_pred[r]) << key;
      batch_alerts += P->y_pred[r] != 0 ? 1 : 0;
      stream_alerts += it->second.pred != 0 ? 1 : 0;
    }
    EXPECT_EQ(stream_alerts, batch_alerts);
    EXPECT_EQ(chain.value()->alerts(), stream_alerts);
    total_alerts += stream_alerts;

    // Non-vacuity: several epochs, several groups, every packet consumed.
    EXPECT_GE(chain.value()->epochs(), 3u);
    EXPECT_EQ(chain.value()->packets(), dep.trace.view.size());
    EXPECT_EQ(chain.value()->rows(), F->rows);
    EXPECT_EQ(chain.value()->late_packets(), 0u);
    std::set<std::string> base_keys;
    for (const auto& [key, row] : srows) {
      base_keys.insert(key.substr(0, key.find("#w")));
    }
    EXPECT_GT(base_keys.size(), 1u) << "grouping was vacuous";
  }
  // The detector must actually fire somewhere across the four captures.
  EXPECT_GT(total_alerts, 0u);
}

// normalize with the default mode="epoch" must equal fitting the batch
// normalize op on exactly that epoch's rows.
TEST(StreamingNormalize, EpochModeMatchesPerEpochBatchFit) {
  const trace::Dataset ds = trace::make_dataset("P2", 0.1);
  const double window = capture_span(ds) / 6.0;
  ASSERT_GT(window, 0.0);

  PipelineSpec raw_spec = parse_spec(windowed_prefix(window));
  PipelineSpec norm_spec = parse_spec(windowed_prefix(window) + R"(
    {"func": "normalize", "input": ["F"], "output": "N", "kind": "minmax"},
  )");

  auto raw_chain = compile_streaming(raw_spec);
  auto norm_chain = compile_streaming(norm_spec);
  ASSERT_TRUE(raw_chain.ok()) << raw_chain.error().message;
  ASSERT_TRUE(norm_chain.ok()) << norm_chain.error().message;

  std::vector<FeatureTable> raw_epochs, norm_epochs;
  raw_chain.value()->set_callback(
      [&](EpochBatch&& b) { raw_epochs.push_back(std::move(b.table)); });
  norm_chain.value()->set_callback(
      [&](EpochBatch&& b) { norm_epochs.push_back(std::move(b.table)); });
  for (const auto& v : ds.trace.view) {
    raw_chain.value()->push(v);
    norm_chain.value()->push(v);
  }
  raw_chain.value()->finish();
  norm_chain.value()->finish();

  ASSERT_GE(raw_epochs.size(), 3u);
  ASSERT_EQ(raw_epochs.size(), norm_epochs.size());
  for (size_t e = 0; e < raw_epochs.size(); ++e) {
    FeatureTable expect = raw_epochs[e];
    features::Normalizer norm(features::NormKind::kMinMax);
    norm.fit(expect);
    norm.apply(expect);
    ASSERT_EQ(norm_epochs[e].rows, expect.rows) << "epoch " << e;
    for (size_t r = 0; r < expect.rows; ++r) {
      for (size_t c = 0; c < expect.cols; ++c) {
        EXPECT_EQ(norm_epochs[e].at(r, c), expect.at(r, c))
            << "epoch " << e << " row " << r << " col " << c;
      }
    }
  }
}

// Per-packet chains (damped_stats -> predict) must match the batch run
// positionally, and the micro-batch size must never change a score.
TEST(StreamingPerPacket, DampedStatsChainMatchesBatchAndMicroBatchInvariant) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.1);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const trace::Dataset train = slice_dataset(ds, 0, grace);
  const trace::Dataset dep = slice_dataset(ds, grace, ds.trace.view.size());

  PipelineSpec train_spec = parse_spec(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "damped_stats", "input": ["P"], "output": "F"},
    {"func": "model", "input": None, "output": "M0", "model_type": "KitNET",
     "normalize": true},
    {"func": "train", "input": ["M0", "F"], "output": "Model"},
  )");
  Engine::Options eopts;
  eopts.registry = nullptr;
  OpContext tctx;
  tctx.dataset = &train;
  auto trained = Engine(eopts).run(train_spec, tctx);
  ASSERT_TRUE(trained.ok()) << trained.error().message;
  const ModelValue* model = trained.value().get<ModelValue>("Model");
  ASSERT_NE(model, nullptr);

  PipelineSpec deploy = parse_spec(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "damped_stats", "input": ["P"], "output": "F"},
    {"func": "predict", "input": ["Model", "F"], "output": "Preds"},
  )");
  std::map<std::string, Value> seed;
  seed.emplace("Model", *model);
  OpContext dctx;
  dctx.dataset = &dep;
  auto report = Engine(eopts).run(deploy, dctx, &seed);
  ASSERT_TRUE(report.ok()) << report.error().message;
  const Predictions* P = report.value().get<Predictions>("Preds");
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(P->scores.size(), dep.trace.view.size());

  auto stream_scores = [&](size_t micro_batch) {
    StreamingOptions sopts;
    sopts.bindings.emplace("Model", *model);
    sopts.micro_batch = micro_batch;
    auto chain = compile_streaming(deploy, std::move(sopts));
    EXPECT_TRUE(chain.ok()) << chain.error().message;
    std::vector<std::pair<int64_t, double>> out;  // (capture index, score)
    chain.value()->set_callback([&out](EpochBatch&& b) {
      EXPECT_TRUE(b.scored);
      for (size_t r = 0; r < b.table.rows; ++r) {
        out.emplace_back(b.table.unit_id[r], b.scores[r]);
      }
    });
    for (const auto& v : dep.trace.view) chain.value()->push(v);
    chain.value()->finish();
    return out;
  };

  const auto big = stream_scores(64);
  ASSERT_EQ(big.size(), P->scores.size());
  for (size_t i = 0; i < big.size(); ++i) {
    EXPECT_EQ(big[i].first, static_cast<int64_t>(dep.trace.view[i].index));
    EXPECT_EQ(big[i].second, P->scores[i]) << "packet " << i;
  }
  // The micro-batch size is a pure throughput knob: bit-identical scores.
  EXPECT_EQ(stream_scores(7), big);
}

TEST(StreamingCompile, RejectsBatchOnlyOpsWithDiagnostics) {
  const auto compile_err = [](const std::string& body,
                              StreamingOptions opts = {}) {
    auto chain = compile_streaming(parse_spec(body), std::move(opts));
    EXPECT_FALSE(chain.ok());
    return chain.ok() ? std::string() : chain.error().message;
  };

  // Training belongs to the batch engine.
  EXPECT_NE(compile_err(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "damped_stats", "input": ["P"], "output": "F"},
    {"func": "model", "input": None, "output": "M0", "model_type": "KitNET"},
    {"func": "train", "input": ["M0", "F"], "output": "Model"},
  )").find("batch-only"), std::string::npos);

  // time_slice without align="global" has no shared epoch boundary.
  EXPECT_NE(compile_err(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "groupby", "input": ["P"], "output": "G", "flowid": ["srcip"]},
    {"func": "time_slice", "input": ["G"], "output": "W", "window": 5},
    {"func": "apply_aggregates", "input": ["W"], "output": "F"},
  )").find("align"), std::string::npos);

  // median needs the whole window resident.
  EXPECT_NE(compile_err(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "groupby", "input": ["P"], "output": "G", "flowid": ["srcip"]},
    {"func": "time_slice", "input": ["G"], "output": "W", "window": 5,
     "align": "global"},
    {"func": "apply_aggregates", "input": ["W"], "output": "F",
     "list": [{"field": "len", "func": "median"}]},
  )").find("median"), std::string::npos);

  // Arbitrary table surgery is not lowerable; the diagnostic lists the
  // supported subset.
  EXPECT_NE(compile_err(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "packet_features", "input": ["P"], "output": "F"},
    {"func": "one_hot", "input": ["F"], "output": "F2", "column": "proto"},
  )").find("supported ops"), std::string::npos);

  // predict without a seeded model fails the shared type check by name.
  EXPECT_NE(compile_err(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "damped_stats", "input": ["P"], "output": "F"},
    {"func": "predict", "input": ["Model", "F"], "output": "Preds"},
  )").find("Model"), std::string::npos);

  // A seeded binding that was never trained/constructed is caught too.
  StreamingOptions with_empty;
  with_empty.bindings.emplace("Model", ModelValue{});
  EXPECT_NE(compile_err(R"(
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "damped_stats", "input": ["P"], "output": "F"},
    {"func": "predict", "input": ["Model", "F"], "output": "Preds"},
  )", std::move(with_empty)).find("ModelValue"), std::string::npos);
}

// reset() must return a chain to its freshly-compiled state: replaying the
// same packets yields bit-identical epochs.
TEST(StreamingPipeline, ResetReplaysIdentically) {
  const trace::Dataset ds = trace::make_dataset("P3", 0.1);
  const double window = capture_span(ds) / 5.0;
  ASSERT_GT(window, 0.0);
  auto chain = compile_streaming(parse_spec(windowed_prefix(window)));
  ASSERT_TRUE(chain.ok()) << chain.error().message;

  const auto first = run_chain(*chain.value(), ds);
  const uint64_t first_epochs = chain.value()->epochs();
  ASSERT_FALSE(first.empty());

  chain.value()->reset();
  EXPECT_EQ(chain.value()->packets(), 0u);
  EXPECT_EQ(chain.value()->epochs(), 0u);
  const auto second = run_chain(*chain.value(), ds);
  EXPECT_EQ(chain.value()->epochs(), first_epochs);

  ASSERT_EQ(second.size(), first.size());
  for (const auto& [key, row] : first) {
    const auto it = second.find(key);
    ASSERT_NE(it, second.end()) << key;
    EXPECT_EQ(it->second.vals, row.vals) << key;
    EXPECT_EQ(it->second.epoch, row.epoch) << key;
  }
}

/// Epoch sink that flattens every emitted row (tests only).
class CollectingEpochSink : public EpochSink {
 public:
  void on_epoch(const EpochBatch& b, size_t consumer) override {
    for (size_t r = 0; r < b.table.rows; ++r) {
      keys.push_back(b.keys[r]);
      scores.push_back(b.scored ? b.scores[r] : 0.0);
      preds.push_back(b.scored ? b.predictions[r] : 0);
    }
    ++epochs;
    last_consumer = consumer;
  }

  std::vector<std::string> keys;
  std::vector<double> scores;
  std::vector<int> preds;
  size_t epochs = 0;
  size_t last_consumer = 0;
};

// The IngestRuntime pipeline sink mode must deliver through the live
// queue/consumer machinery exactly what a direct chain push produces, with
// the runtime stats and the chain's registry mirrors agreeing.
TEST(StreamingRuntime, PipelineModeMatchesDirectPush) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.1);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const trace::Dataset train = slice_dataset(ds, 0, grace);
  const trace::Dataset dep = slice_dataset(ds, grace, ds.trace.view.size());
  const double window = capture_span(dep) / 6.0;
  ASSERT_GT(window, 0.0);

  const ModelValue model = train_windowed_model(train, window);
  PipelineSpec deploy = parse_spec(windowed_prefix(window) + R"(
    {"func": "predict", "input": ["Model", "F"], "output": "Preds"},
  )");

  // Reference: direct push through one chain.
  StreamingOptions ref_opts;
  ref_opts.bindings.emplace("Model", model);
  auto ref = compile_streaming(deploy, std::move(ref_opts));
  ASSERT_TRUE(ref.ok()) << ref.error().message;
  const auto expect = run_chain(*ref.value(), dep);

  // Live path: replay the same capture through the ingestion runtime with
  // an instrumented chain (per-operator spans + chain counters).
  telemetry::Registry reg;
  IngestRuntime::Options opts;
  opts.consumers = 1;
  opts.registry = &reg;
  CollectingEpochSink sink;
  IngestRuntime rt(
      opts,
      [&](size_t) -> std::unique_ptr<StreamPipeline> {
        StreamingOptions sopts;
        sopts.bindings.emplace("Model", model);
        sopts.registry = &reg;
        auto chain = compile_streaming(deploy, std::move(sopts));
        EXPECT_TRUE(chain.ok()) << chain.error().message;
        return chain.ok() ? std::move(chain).value() : nullptr;
      },
      &sink);
  netio::TraceReplaySource src(dep.trace);
  auto stats = rt.run(src);
  ASSERT_TRUE(stats.ok()) << stats.error().message;

  // Same rows, same scores, same alert rows.
  ASSERT_EQ(sink.keys.size(), expect.size());
  size_t alerted_rows = 0;
  for (size_t i = 0; i < sink.keys.size(); ++i) {
    const auto it = expect.find(sink.keys[i]);
    ASSERT_NE(it, expect.end()) << sink.keys[i];
    EXPECT_EQ(sink.scores[i], it->second.score) << sink.keys[i];
    EXPECT_EQ(sink.preds[i], it->second.pred) << sink.keys[i];
    alerted_rows += sink.preds[i] != 0 ? 1 : 0;
  }

  // Runtime accounting: scored counts packets fed to the chain, alerted
  // counts alerted rows.
  EXPECT_EQ(stats.value().enqueued, dep.trace.view.size());
  EXPECT_EQ(stats.value().scored, dep.trace.view.size());
  EXPECT_EQ(stats.value().parse_skipped, 0u);
  EXPECT_EQ(stats.value().alerted, alerted_rows);

  // The chain mirrored its counters and per-operator flush spans into the
  // shared registry.
  const telemetry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("stream.packets"), dep.trace.view.size());
  EXPECT_EQ(snap.counter_value("stream.epochs"), sink.epochs);
  EXPECT_EQ(snap.counter_value("stream.rows"), expect.size());
  EXPECT_EQ(snap.counter_value("stream.alerts"), alerted_rows);
  size_t agg_spans = 0, score_spans = 0;
  for (const telemetry::SpanRecord& s : snap.spans) {
    agg_spans += s.name == "stream.op.apply_aggregates" ? 1 : 0;
    score_spans += s.name == "stream.op.predict" ? 1 : 0;
  }
  EXPECT_EQ(agg_spans, sink.epochs);
  EXPECT_EQ(score_spans, sink.epochs);
}

// Soak: looping the capture must not grow the group directory — the chain's
// state is bounded by the traffic's group population, not stream length.
TEST(StreamingRuntime, LoopingReplayKeepsGroupPopulationBounded) {
  const trace::Dataset ds = trace::make_dataset("P2", 0.1);
  const double window = capture_span(ds) / 4.0;
  ASSERT_GT(window, 0.0);
  PipelineSpec spec = parse_spec(windowed_prefix(window));

  const auto run_loops = [&](size_t loops) {
    CollectingEpochSink sink;
    IngestRuntime::Options opts;
    opts.consumers = 1;
    opts.registry = nullptr;
    IngestRuntime rt(
        opts,
        [&](size_t) -> std::unique_ptr<StreamPipeline> {
          auto chain = compile_streaming(spec);
          EXPECT_TRUE(chain.ok()) << chain.error().message;
          return chain.ok() ? std::move(chain).value() : nullptr;
        },
        &sink);
    netio::TraceReplaySource inner(ds.trace);
    netio::LoopOptions lo;
    lo.loops = loops;
    netio::LoopingSource src(inner, lo);
    auto stats = rt.run(src);
    EXPECT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().scored, loops * ds.trace.view.size());
    std::set<std::string> base_keys;
    for (const std::string& k : sink.keys) {
      base_keys.insert(k.substr(0, k.find("#w")));
    }
    return std::make_pair(base_keys, sink.epochs);
  };

  const auto [one_pass_keys, one_pass_epochs] = run_loops(1);
  const auto [three_pass_keys, three_pass_epochs] = run_loops(3);
  ASSERT_GT(one_pass_keys.size(), 1u);
  // Three passes see the same traffic population: the directory (and with
  // it the chain's persistent state) stops growing after the first pass...
  EXPECT_EQ(three_pass_keys, one_pass_keys);
  // ...while the window clock keeps advancing (the stream really ran 3x).
  EXPECT_GE(three_pass_epochs, 2 * one_pass_epochs);
}

}  // namespace
}  // namespace lumen::core
