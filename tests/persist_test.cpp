// Model persistence tests: save/load roundtrips preserve predictions
// bit-for-bit; corrupt streams fail cleanly.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/rng.h"
#include "ml/persist.h"

namespace lumen::ml {
namespace {

FeatureTable blobs(size_t n, uint64_t seed) {
  FeatureTable t = FeatureTable::make(n, {"a", "b", "c"});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.4) ? 1 : 0;
    for (size_t d = 0; d < 3; ++d) {
      t.at(i, d) = rng.normal(label * 3.0, 1.0);
    }
    t.labels[i] = label;
  }
  return t;
}

TEST(Persist, TreeRoundtripPreservesPredictions) {
  const FeatureTable data = blobs(300, 1);
  DecisionTree tree;
  tree.fit(data);
  std::stringstream ss;
  ASSERT_TRUE(save_model(tree, ss).ok());
  auto loaded = load_tree(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().node_count(), tree.node_count());
  EXPECT_EQ(loaded.value().depth(), tree.depth());
  EXPECT_EQ(loaded.value().predict(data), tree.predict(data));
  EXPECT_EQ(loaded.value().score(data), tree.score(data));
}

TEST(Persist, ForestRoundtripPreservesPredictions) {
  const FeatureTable data = blobs(250, 2);
  ForestConfig cfg;
  cfg.n_trees = 9;
  RandomForest rf(cfg);
  rf.fit(data);
  std::stringstream ss;
  ASSERT_TRUE(save_model(rf, ss).ok());
  auto loaded = load_forest(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value().tree_count(), 9u);
  EXPECT_EQ(loaded.value().predict(data), rf.predict(data));
  EXPECT_EQ(loaded.value().score(data), rf.score(data));
}

TEST(Persist, NbRoundtripPreservesScores) {
  const FeatureTable data = blobs(200, 3);
  GaussianNB nb;
  nb.fit(data);
  std::stringstream ss;
  ASSERT_TRUE(save_model(nb, ss).ok());
  auto loaded = load_nb(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  const auto a = nb.score(data);
  const auto b = loaded.value().score(data);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Persist, NormalizerRoundtrip) {
  const FeatureTable data = blobs(100, 4);
  features::Normalizer n(features::NormKind::kZScore);
  n.fit(data);
  std::stringstream ss;
  ASSERT_TRUE(save_normalizer(n, ss).ok());
  auto loaded = load_normalizer(ss);
  ASSERT_TRUE(loaded.ok());
  FeatureTable a = data, b = data;
  n.apply(a);
  loaded.value().apply(b);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(loaded.value().kind(), features::NormKind::kZScore);
}

TEST(Persist, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lumen_rf.model").string();
  const FeatureTable data = blobs(150, 5);
  RandomForest rf;
  rf.fit(data);
  ASSERT_TRUE(save_model_file(rf, path).ok());
  auto loaded = load_forest_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().predict(data), rf.predict(data));
  std::filesystem::remove(path);
}

TEST(Persist, RejectsWrongTypeAndGarbage) {
  const FeatureTable data = blobs(50, 6);
  DecisionTree tree;
  tree.fit(data);
  std::stringstream ss;
  ASSERT_TRUE(save_model(tree, ss).ok());
  // A tree stream is not a forest.
  auto as_forest = load_forest(ss);
  EXPECT_FALSE(as_forest.ok());
  // Garbage is rejected with a clear message.
  std::stringstream junk("this is not a model");
  auto r = load_tree(junk);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("not a lumen model"), std::string::npos);
  // Truncation is detected.
  std::stringstream trunc;
  ASSERT_TRUE(save_model(tree, trunc).ok());
  std::string text = trunc.str();
  std::stringstream cut(text.substr(0, text.size() / 2));
  EXPECT_FALSE(load_tree(cut).ok());
}

TEST(Persist, HeaderPeekReportsType) {
  std::stringstream ss;
  GaussianNB nb;
  nb.fit(blobs(60, 7));
  ASSERT_TRUE(save_model(nb, ss).ok());
  auto type = read_model_header(ss);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.value(), "nb");
}

}  // namespace
}  // namespace lumen::ml
