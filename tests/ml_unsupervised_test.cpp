// Unsupervised/anomaly-detection model tests: eigensolver correctness,
// Nyström kernel approximation quality, one-class SVMs, k-means/GMM, the
// autoencoders, and KitNET's clustering + detection behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/eigen.h"
#include "ml/gmm.h"
#include "ml/kernel.h"
#include "ml/kitnet.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace lumen::ml {
namespace {

/// Benign cluster at the origin plus far-away anomalies; labels mark the
/// anomalies so AUC is measurable (unsupervised fit uses benign rows only).
FeatureTable anomaly_set(size_t n_benign, size_t n_anomalous, size_t dims,
                         double distance, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t d = 0; d < dims; ++d) names.push_back("f" + std::to_string(d));
  FeatureTable t = FeatureTable::make(n_benign + n_anomalous, names);
  Rng rng(seed);
  for (size_t i = 0; i < t.rows; ++i) {
    const bool anomaly = i >= n_benign;
    for (size_t d = 0; d < dims; ++d) {
      t.at(i, d) = rng.normal(anomaly ? distance : 0.0, 1.0);
    }
    t.labels[i] = anomaly ? 1 : 0;
    t.unit_id[i] = static_cast<int64_t>(i);
    t.unit_time[i] = static_cast<double>(i);
  }
  return t;
}

TEST(JacobiEigen, DiagonalMatrix) {
  const std::vector<double> a = {3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0};
  const SymEigen e = jacobi_eigen(a, 3);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 2.0, 1e-10);
  EXPECT_NEAR(e.values[2], 1.0, 1e-10);
}

TEST(JacobiEigen, ReconstructsMatrix) {
  Rng rng(3);
  const size_t n = 8;
  std::vector<double> a(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.normal(0.0, 1.0);
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  const SymEigen e = jacobi_eigen(a, n);
  // A == V diag(L) V^T.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) {
        acc += e.vectors[i * n + k] * e.values[k] * e.vectors[j * n + k];
      }
      EXPECT_NEAR(acc, a[i * n + j], 1e-8) << i << "," << j;
    }
  }
}

TEST(JacobiEigen, VectorsAreOrthonormal) {
  Rng rng(4);
  const size_t n = 6;
  std::vector<double> a(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a[i * n + j] = a[j * n + i] = rng.uniform(-1.0, 1.0);
    }
  }
  const SymEigen e = jacobi_eigen(a, n);
  for (size_t c1 = 0; c1 < n; ++c1) {
    for (size_t c2 = 0; c2 < n; ++c2) {
      double dot = 0.0;
      for (size_t k = 0; k < n; ++k) {
        dot += e.vectors[k * n + c1] * e.vectors[k * n + c2];
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(RbfKernel, BasicProperties) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(rbf_kernel(x, x, 0.5), 1.0);
  EXPECT_NEAR(rbf_kernel(x, y, 0.5), std::exp(-0.5 * 5.0), 1e-12);
  EXPECT_GT(rbf_kernel(x, y, 0.1), rbf_kernel(x, y, 1.0));
}

TEST(NystromMap, ExactWhenLandmarksCoverData) {
  // With every training row as a landmark the Nyström map reproduces the
  // kernel (up to the eigenvalue floor).
  const FeatureTable X = anomaly_set(100, 0, 3, 0.0, 31);
  NystromMap::Config cfg;
  cfg.n_landmarks = 100;
  cfg.gamma = 0.25;
  NystromMap map(cfg);
  map.fit(X);
  const FeatureTable Z = map.transform(X);
  double max_err = 0.0;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      double dot = 0.0;
      for (size_t c = 0; c < Z.cols; ++c) dot += Z.at(i, c) * Z.at(j, c);
      const double k = rbf_kernel(X.row(i), X.row(j), 0.25);
      max_err = std::max(max_err, std::fabs(dot - k));
    }
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(NystromMap, SubsampledLandmarksStillApproximate) {
  const FeatureTable X = anomaly_set(120, 0, 3, 0.0, 31);
  NystromMap::Config cfg;
  cfg.n_landmarks = 64;
  cfg.gamma = 0.25;
  NystromMap map(cfg);
  map.fit(X);
  const FeatureTable Z = map.transform(X);
  double sum_err = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      double dot = 0.0;
      for (size_t c = 0; c < Z.cols; ++c) dot += Z.at(i, c) * Z.at(j, c);
      sum_err += std::fabs(dot - rbf_kernel(X.row(i), X.row(j), 0.25));
      ++n;
    }
  }
  EXPECT_LT(sum_err / static_cast<double>(n), 0.05);  // low mean error
}

TEST(MedianHeuristic, PositiveAndStable) {
  const FeatureTable X = anomaly_set(100, 0, 4, 0.0, 37);
  const double g1 = median_heuristic_gamma(X);
  const double g2 = median_heuristic_gamma(X);
  EXPECT_GT(g1, 0.0);
  EXPECT_DOUBLE_EQ(g1, g2);
}

class OneClassSweep : public ::testing::TestWithParam<double> {};

TEST_P(OneClassSweep, OcsvmRanksAnomaliesHigher) {
  const double dist = GetParam();
  const FeatureTable data = anomaly_set(250, 40, 4, dist, 41);
  OneClassSvm::Config cfg;
  cfg.max_train_rows = 200;
  OneClassSvm m(cfg);
  m.fit(data);
  EXPECT_GT(auc(data.labels, m.score(data)), dist >= 6.0 ? 0.97 : 0.85);
}

INSTANTIATE_TEST_SUITE_P(Distances, OneClassSweep,
                         ::testing::Values(4.0, 6.0, 8.0));

TEST(LinearOneClassSvm, DetectsCollapseTowardOrigin) {
  // The linear one-class SVM separates data from the ORIGIN (its role in
  // Lumen is downstream of the Nyström map, where benign rows land far from
  // the origin and anomalies collapse onto it). Model that geometry: benign
  // around +5 per dim, anomalies near 0.
  Rng rng(43);
  FeatureTable data = FeatureTable::make(350, {"a", "b", "c", "d"});
  for (size_t i = 0; i < data.rows; ++i) {
    const bool anomaly = i >= 300;
    for (size_t d = 0; d < 4; ++d) {
      data.at(i, d) = rng.normal(anomaly ? 0.0 : 5.0, 0.7);
    }
    data.labels[i] = anomaly ? 1 : 0;
  }
  LinearOneClassSvm m;
  m.fit(data);
  EXPECT_GT(auc(data.labels, m.score(data)), 0.95);
}

TEST(LinearOneClassSvm, OnNystromEmbeddingDetectsShiftedOutliers) {
  // End-to-end geometry check: Nyström embed, then linear OCSVM (this is
  // exactly the A09 construction).
  const FeatureTable data = anomaly_set(300, 50, 4, 6.0, 43);
  NystromMap map;
  map.fit(data.select_rows(benign_rows(data)));
  const FeatureTable z = map.transform(data);
  LinearOneClassSvm m;
  m.fit(z);
  EXPECT_GT(auc(z.labels, m.score(z)), 0.9);
}

TEST(KMeans, RecoversBlobCentroids) {
  Rng rng(47);
  FeatureTable t = FeatureTable::make(200, {"x", "y"});
  for (size_t i = 0; i < 200; ++i) {
    const bool second = i >= 100;
    t.at(i, 0) = rng.normal(second ? 10.0 : 0.0, 0.5);
    t.at(i, 1) = rng.normal(second ? 10.0 : 0.0, 0.5);
  }
  std::vector<size_t> rows(200);
  for (size_t i = 0; i < 200; ++i) rows[i] = i;
  KMeans::Config cfg;
  cfg.k = 2;
  KMeans km(cfg);
  km.fit(t, rows);
  ASSERT_EQ(km.k(), 2u);
  // The two centroids are near (0,0) and (10,10) in some order.
  const auto& c = km.centroids();
  const double d0 = std::hypot(c[0], c[1]);
  const double d1 = std::hypot(c[2] - 10.0, c[3] - 10.0);
  const double d0b = std::hypot(c[0] - 10.0, c[1] - 10.0);
  const double d1b = std::hypot(c[2], c[3]);
  EXPECT_TRUE((d0 < 1.0 && d1 < 1.0) || (d0b < 1.0 && d1b < 1.0));
}

TEST(Gmm, OutlierScoresExceedInlierScores) {
  const FeatureTable data = anomaly_set(300, 40, 3, 7.0, 53);
  Gmm m;
  m.fit(data);
  EXPECT_GT(auc(data.labels, m.score(data)), 0.95);
}

TEST(Gmm, FitProducesFiniteLikelihood) {
  const FeatureTable data = anomaly_set(200, 0, 3, 0.0, 59);
  Gmm m;
  m.fit(data);
  EXPECT_TRUE(std::isfinite(m.final_log_likelihood()));
}

TEST(AutoEncoderCore, LearnsToReconstruct) {
  Rng rng(61);
  AutoEncoderCore ae(6, 0.75, 0.2, 99);
  std::vector<double> x(6);
  double first = 0.0;
  double tail_sum = 0.0;
  const int kIters = 4000;
  for (int it = 0; it < kIters; ++it) {
    // Structured input: two independent factors drive all 6 dims.
    const double a = rng.uniform(), b = rng.uniform();
    x = {a, a, a * 0.5 + 0.5 * b, b, b, 0.5 * a};
    const double rmse = ae.train_sample(x);
    if (it == 0) first = rmse;
    if (it >= kIters - 200) tail_sum += rmse;
  }
  const double tail_mean = tail_sum / 200.0;
  EXPECT_LT(tail_mean, first);
  EXPECT_LT(tail_mean, 0.2);
}

TEST(AutoEncoderDetector, FlagsOutOfDistribution) {
  const FeatureTable data = anomaly_set(400, 60, 5, 6.0, 67);
  AutoEncoderDetector m;
  m.fit(data);
  EXPECT_GT(auc(data.labels, m.score(data)), 0.9);
  // The calibrated threshold keeps most benign rows unflagged.
  const std::vector<int> pred = m.predict(data);
  size_t benign_fp = 0, benign_n = 0;
  for (size_t i = 0; i < data.rows; ++i) {
    if (data.labels[i] == 0) {
      ++benign_n;
      benign_fp += pred[i];
    }
  }
  EXPECT_LT(static_cast<double>(benign_fp) / benign_n, 0.1);
}

TEST(KitNet, ClustersRespectSizeCap) {
  const FeatureTable data = anomaly_set(400, 0, 23, 0.0, 71);
  KitNet::Config cfg;
  cfg.max_cluster_size = 5;
  KitNet m(cfg);
  m.fit(data);
  ASSERT_FALSE(m.clusters().empty());
  size_t covered = 0;
  for (const auto& c : m.clusters()) {
    EXPECT_LE(c.size(), 5u);
    covered += c.size();
  }
  EXPECT_EQ(covered, 23u);  // every feature in exactly one cluster
}

TEST(KitNet, DetectsDistributionShift) {
  const FeatureTable data = anomaly_set(500, 80, 10, 8.0, 73);
  KitNet m;
  m.fit(data);
  EXPECT_GT(auc(data.labels, m.score(data)), 0.9);
}

TEST(KitNet, EmptyBenignSetDoesNotCrash) {
  FeatureTable data = anomaly_set(10, 0, 4, 0.0, 79);
  for (int& l : data.labels) l = 1;  // nothing benign to train on
  KitNet m;
  m.fit(data);
  EXPECT_EQ(m.score(data).size(), data.rows);
}

}  // namespace
}  // namespace lumen::ml
