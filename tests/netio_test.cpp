// Unit tests for the netio substrate: byte helpers, checksums, packet
// builders, the parser, and their roundtrip consistency.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "netio/builder.h"
#include "netio/parse.h"

namespace lumen::netio {
namespace {

const MacAddr kMacA{0x02, 0x1b, 1, 2, 3, 4};
const MacAddr kMacB{0x02, 0x1b, 5, 6, 7, 8};
constexpr uint32_t kIpA = 0xc0a8010a;  // 192.168.1.10
constexpr uint32_t kIpB = 0x08080808;  // 8.8.8.8

TEST(Bytes, Ipv4StringRoundtrip) {
  EXPECT_EQ(ipv4_to_string(kIpA), "192.168.1.10");
  EXPECT_EQ(ipv4_from_string("192.168.1.10"), kIpA);
  EXPECT_EQ(ipv4_from_string("256.1.1.1"), 0u);
  EXPECT_EQ(ipv4_from_string("junk"), 0u);
}

TEST(Bytes, WriterReaderRoundtrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u16le(0x5678);
  ByteReader r(buf);
  EXPECT_EQ(r.u8(0), 0xab);
  EXPECT_EQ(r.u16(1), 0x1234);
  EXPECT_EQ(r.u32(3), 0xdeadbeefu);
  EXPECT_EQ(r.u16le(7), 0x5678);
}

TEST(Bytes, InternetChecksumKnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 2ddf0 -> ddf2
  // -> checksum ~0xddf2 = 0x220d.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Bytes, ChecksumOfBufferWithItsChecksumIsZero) {
  Bytes data = {0x45, 0x00, 0x00, 0x28, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06,
                0x00, 0x00, 0xc0, 0xa8, 0x01, 0x0a, 0x08, 0x08, 0x08, 0x08};
  const uint16_t csum = internet_checksum(data);
  data[10] = static_cast<uint8_t>(csum >> 8);
  data[11] = static_cast<uint8_t>(csum);
  // Verifying sum over a buffer that includes a correct checksum gives 0.
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Builder, TcpRoundtrip) {
  TcpOpts tcp;
  tcp.flags = kSyn | kAck;
  tcp.seq = 12345;
  tcp.ack = 999;
  tcp.window = 4096;
  const Bytes payload = {'h', 'i'};
  const Bytes frame = build_tcp(kMacA, kMacB, kIpA, kIpB, 5555, 80, tcp,
                                payload);
  RawPacket pkt{1.5, frame};
  auto res = parse_packet(pkt, LinkType::kEthernet, 0);
  ASSERT_TRUE(res.ok()) << res.error().message;
  const PacketView& v = res.value();
  EXPECT_TRUE(v.has_tcp());
  EXPECT_EQ(v.src_ip, kIpA);
  EXPECT_EQ(v.dst_ip, kIpB);
  EXPECT_EQ(v.src_port, 5555);
  EXPECT_EQ(v.dst_port, 80);
  EXPECT_EQ(v.tcp_seq, 12345u);
  EXPECT_EQ(v.tcp_ack, 999u);
  EXPECT_EQ(v.tcp_window, 4096);
  EXPECT_TRUE(v.tcp_flag(kSyn));
  EXPECT_TRUE(v.tcp_flag(kAck));
  EXPECT_FALSE(v.tcp_flag(kFin));
  EXPECT_EQ(v.payload_len, 2);
  EXPECT_EQ(v.src_mac, kMacA);
  EXPECT_EQ(v.dst_mac, kMacB);
  EXPECT_EQ(v.wire_len, frame.size());
  EXPECT_EQ(v.ip_len, 20 + 20 + 2);
}

TEST(Builder, TcpChecksumsAreValid) {
  const Bytes frame =
      build_tcp(kMacA, kMacB, kIpA, kIpB, 1, 2, TcpOpts{}, {1, 2, 3});
  // IP header checksum validates to zero.
  EXPECT_EQ(internet_checksum({frame.data() + 14, 20}), 0);
  // TCP checksum with pseudo-header validates to zero.
  const size_t l4 = 34;
  uint32_t pseudo = 0;
  pseudo += (kIpA >> 16) + (kIpA & 0xffff);
  pseudo += (kIpB >> 16) + (kIpB & 0xffff);
  pseudo += 6 + static_cast<uint32_t>(frame.size() - l4);
  EXPECT_EQ(internet_checksum({frame.data() + l4, frame.size() - l4}, pseudo),
            0);
}

TEST(Builder, UdpRoundtrip) {
  const Bytes frame = build_udp(kMacA, kMacB, kIpA, kIpB, 5353, 53,
                                payload_dns_query(7, "example.com"));
  auto res = parse_packet(RawPacket{0.0, frame}, LinkType::kEthernet, 0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().has_udp());
  EXPECT_EQ(res.value().dst_port, 53);
  EXPECT_EQ(res.value().app, AppProto::kDns);
}

TEST(Builder, IcmpRoundtrip) {
  const Bytes frame =
      build_icmp(kMacA, kMacB, kIpA, kIpB, 8, 0, Bytes(16, 0x42));
  auto res = parse_packet(RawPacket{0.0, frame}, LinkType::kEthernet, 0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().proto, IpProto::kIcmp);
  EXPECT_EQ(res.value().icmp_type, 8);
}

TEST(Builder, ArpParsesAsL2Only) {
  const Bytes frame = build_arp(kMacA, kMacB, 2, kMacA, kIpA, kMacB, kIpB);
  auto res = parse_packet(RawPacket{0.0, frame}, LinkType::kEthernet, 0);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.value().has_ip);
  EXPECT_EQ(res.value().ether_type, 0x0806);
}

TEST(Builder, Dot11MgmtRoundtrip) {
  const Bytes frame = build_dot11_mgmt(12, kMacA, kMacB, kMacA, {0x00, 0x07});
  auto res = parse_packet(RawPacket{0.0, frame}, LinkType::kIeee80211, 0);
  ASSERT_TRUE(res.ok());
  const PacketView& v = res.value();
  EXPECT_TRUE(v.is_dot11);
  EXPECT_EQ(v.dot11_type, Dot11Type::kManagement);
  EXPECT_EQ(v.dot11_subtype, 12);
  EXPECT_EQ(v.src_mac, kMacA);
  EXPECT_EQ(v.dst_mac, kMacB);
  EXPECT_FALSE(v.has_ip);
}

TEST(Builder, Dot11DataRoundtrip) {
  const Bytes frame = build_dot11_data(kMacA, kMacB, kMacB, 100, 0x55);
  auto res = parse_packet(RawPacket{0.0, frame}, LinkType::kIeee80211, 0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().dot11_type, Dot11Type::kData);
  EXPECT_EQ(res.value().wire_len, 124);  // 24-byte header + body
}

TEST(Parse, TruncatedFramesAreRejected) {
  // Truncated ethernet header.
  auto r1 = parse_packet(RawPacket{0.0, Bytes(10, 0)}, LinkType::kEthernet, 0);
  EXPECT_FALSE(r1.ok());
  // Valid ethernet claiming IPv4 but truncated IP header.
  Bytes frame(16, 0);
  frame[12] = 0x08;
  frame[13] = 0x00;
  auto r2 = parse_packet(RawPacket{0.0, frame}, LinkType::kEthernet, 0);
  EXPECT_FALSE(r2.ok());
  // TCP data offset pointing past capture.
  Bytes tcp = build_tcp(kMacA, kMacB, kIpA, kIpB, 1, 2, TcpOpts{}, {});
  tcp[14 + 20 + 12] = 0xf0;  // data offset 15 words = 60 bytes
  auto r3 = parse_packet(RawPacket{0.0, tcp}, LinkType::kEthernet, 0);
  EXPECT_FALSE(r3.ok());
}

TEST(Parse, AppInferenceByPortAndPayload) {
  EXPECT_EQ(infer_app_proto(40000, 1883, IpProto::kTcp, {}), AppProto::kMqtt);
  EXPECT_EQ(infer_app_proto(22, 40000, IpProto::kTcp, {}), AppProto::kSsh);
  const Bytes get = {'G', 'E', 'T', ' ', '/'};
  EXPECT_EQ(infer_app_proto(40000, 12345, IpProto::kTcp, get),
            AppProto::kHttp);
  EXPECT_EQ(infer_app_proto(40000, 12345, IpProto::kTcp, {}),
            AppProto::kNone);
}

TEST(Parse, MalformedTcpFlagsStillParse) {
  // Fuzzing-style frames (weird flag combos) must parse, not crash.
  TcpOpts tcp;
  tcp.flags = 0x3f;  // everything at once
  const Bytes frame = build_tcp(kMacA, kMacB, kIpA, kIpB, 0, 0, tcp, {});
  auto res = parse_packet(RawPacket{0.0, frame}, LinkType::kEthernet, 0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().tcp_flag(kSyn));
  EXPECT_TRUE(res.value().tcp_flag(kFin));
}

// ---- Malformed-input corpus: every entry must come back as a parse error
// ---- (never an out-of-bounds read; tools/check_asan.sh runs this file
// ---- under AddressSanitizer).

struct MalformedCase {
  const char* name;
  LinkType link;
  Bytes frame;
};

Bytes valid_tcp_frame() {
  return build_tcp(kMacA, kMacB, kIpA, kIpB, 1234, 80, TcpOpts{},
                   Bytes(4, 0x61));
}

Bytes valid_udp_frame() {
  return build_udp(kMacA, kMacB, kIpA, kIpB, 5353, 53, Bytes(8, 0x62));
}

std::vector<MalformedCase> malformed_corpus() {
  std::vector<MalformedCase> cases;
  cases.push_back({"zero_length_record", LinkType::kEthernet, {}});
  cases.push_back({"truncated_ethernet", LinkType::kEthernet, Bytes(13, 0xaa)});

  Bytes ip_trunc = valid_tcp_frame();
  ip_trunc.resize(14 + 10);  // half an IPv4 header
  cases.push_back({"truncated_ipv4", LinkType::kEthernet, ip_trunc});

  Bytes bad_ihl = valid_tcp_frame();
  bad_ihl[14] = 0x41;  // version 4, IHL 1 (4 bytes < minimum 20)
  cases.push_back({"ihl_below_minimum", LinkType::kEthernet, bad_ihl});

  Bytes huge_ihl = valid_tcp_frame();
  huge_ihl[14] = 0x4f;  // IHL 15 (60 bytes) on a 20-byte header
  huge_ihl.resize(14 + 40);  // and a capture too short to hold it
  cases.push_back({"ihl_past_capture", LinkType::kEthernet, huge_ihl});

  Bytes tcp_trunc = valid_tcp_frame();
  tcp_trunc.resize(14 + 20 + 12);  // 12 of the 20 mandatory TCP bytes
  cases.push_back({"truncated_tcp", LinkType::kEthernet, tcp_trunc});

  Bytes bad_doff = valid_tcp_frame();
  bad_doff[14 + 20 + 12] = 0x10;  // data offset 1 (4 bytes < minimum 20)
  cases.push_back({"tcp_data_offset_below_minimum", LinkType::kEthernet,
                   bad_doff});

  Bytes doff_past = valid_tcp_frame();
  doff_past[14 + 20 + 12] = 0xf0;  // data offset 15 (60 bytes)
  doff_past.resize(14 + 20 + 24);  // capture ends inside the options
  cases.push_back({"tcp_data_offset_past_capture", LinkType::kEthernet,
                   doff_past});

  Bytes udp_trunc = valid_udp_frame();
  udp_trunc.resize(14 + 20 + 4);  // half a UDP header
  cases.push_back({"truncated_udp", LinkType::kEthernet, udp_trunc});

  cases.push_back({"truncated_dot11", LinkType::kIeee80211, Bytes(16, 0x55)});
  return cases;
}

TEST(Parser, MalformedCorpusReturnsErrors) {
  for (const MalformedCase& c : malformed_corpus()) {
    RawPacket pkt{0.0, c.frame};
    auto res = parse_packet(pkt, c.link, 0);
    EXPECT_FALSE(res.ok()) << c.name;
  }
}

TEST(Parser, BogusIpTotalLengthIsToleratedWithoutOverread) {
  // A lying IP total-length field (larger than the capture) must not crash
  // or read past the buffer; the parser trusts min(capture, total length).
  Bytes frame = valid_tcp_frame();
  frame[14 + 2] = 0xff;  // total length 0xffff
  frame[14 + 3] = 0xff;
  RawPacket pkt{0.0, frame};
  auto res = parse_packet(pkt, LinkType::kEthernet, 0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().ip_len, 0xffff);
  EXPECT_LE(static_cast<size_t>(res.value().payload_off) +
                res.value().payload_len,
            frame.size());
}

TEST(Parser, ParseTraceSkipsMalformedAndKeepsCaptureIndex) {
  Trace t;
  for (uint32_t i = 0; i < 5; ++i) {
    t.raw.push_back(RawPacket{static_cast<double>(i), valid_tcp_frame()});
  }
  t.raw[2].data.resize(9);  // wreck the middle packet
  const size_t skipped = parse_trace(t);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(t.view.size(), 4u);
  ASSERT_EQ(t.raw.size(), 4u);  // raw compacted in lockstep with view
  // Views keep their ORIGINAL capture index so label arrays built against
  // the unparsed capture stay addressable.
  const std::vector<uint32_t> want{0, 1, 3, 4};
  for (size_t k = 0; k < t.view.size(); ++k) {
    EXPECT_EQ(t.view[k].index, want[k]) << "position " << k;
    EXPECT_EQ(t.raw[k].ts, static_cast<double>(want[k]));
  }
}

TEST(Parser, ParseTraceNoSkipsKeepsIdentityIndex) {
  Trace t;
  for (uint32_t i = 0; i < 8; ++i) {
    t.raw.push_back(RawPacket{static_cast<double>(i), valid_udp_frame()});
  }
  EXPECT_EQ(parse_trace(t), 0u);
  ASSERT_EQ(t.view.size(), 8u);
  for (uint32_t k = 0; k < 8; ++k) EXPECT_EQ(t.view[k].index, k);
}

TEST(Parser, TruncatedCaptureKeepsWireLen) {
  // A frame recorded with orig_len (snaplen-truncated capture) reports the
  // true on-the-wire length through the view.
  Bytes frame = valid_tcp_frame();
  RawPacket pkt{1.5, frame};
  pkt.orig_len = 90000;
  auto res = parse_packet(pkt, LinkType::kEthernet, 3);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().wire_len, 90000u);
  EXPECT_EQ(res.value().index, 3u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SeedFromIsStable) {
  EXPECT_EQ(Rng::seed_from("F0"), Rng::seed_from("F0"));
  EXPECT_NE(Rng::seed_from("F0"), Rng::seed_from("F1"));
  EXPECT_NE(Rng::seed_from("F0", 1), Rng::seed_from("F0", 2));
}

}  // namespace
}  // namespace lumen::netio
