// FeatureTable and feature-transform tests.
#include <gtest/gtest.h>

#include <cmath>

#include "features/table.h"
#include "features/transform.h"

namespace lumen::features {
namespace {

FeatureTable small_table() {
  FeatureTable t = FeatureTable::make(4, {"a", "b", "c"});
  // a = 0..3, b = 2*a (perfectly correlated), c = constant.
  for (size_t r = 0; r < 4; ++r) {
    t.at(r, 0) = static_cast<double>(r);
    t.at(r, 1) = 2.0 * static_cast<double>(r);
    t.at(r, 2) = 5.0;
    t.labels[r] = r % 2;
    t.unit_id[r] = static_cast<int64_t>(100 + r);
    t.unit_time[r] = 10.0 * static_cast<double>(r);
    t.attack[r] = static_cast<uint8_t>(r);
  }
  return t;
}

TEST(FeatureTable, SelectRowsPreservesMetadata) {
  const FeatureTable t = small_table();
  const std::vector<size_t> pick = {1, 3};
  const FeatureTable s = t.select_rows(pick);
  ASSERT_EQ(s.rows, 2u);
  EXPECT_EQ(s.at(0, 0), 1.0);
  EXPECT_EQ(s.at(1, 1), 6.0);
  EXPECT_EQ(s.labels[0], 1);
  EXPECT_EQ(s.unit_id[1], 103);
  EXPECT_EQ(s.unit_time[1], 30.0);
  EXPECT_EQ(s.attack[0], 1);
}

TEST(FeatureTable, SelectColsByMask) {
  const FeatureTable t = small_table();
  const std::vector<uint8_t> keep = {1, 0, 1};
  const FeatureTable s = t.select_cols(keep);
  ASSERT_EQ(s.cols, 2u);
  EXPECT_EQ(s.col_names[0], "a");
  EXPECT_EQ(s.col_names[1], "c");
  EXPECT_EQ(s.at(2, 0), 2.0);
  EXPECT_EQ(s.at(2, 1), 5.0);
}

TEST(FeatureTable, AppendRequiresMatchingColumns) {
  FeatureTable t = small_table();
  FeatureTable u = small_table();
  EXPECT_TRUE(t.append(u));
  EXPECT_EQ(t.rows, 8u);
  FeatureTable w = FeatureTable::make(1, {"x"});
  EXPECT_FALSE(t.append(w));
  EXPECT_EQ(t.rows, 8u);
}

TEST(Normalizer, MinMaxMapsToUnitRange) {
  FeatureTable t = small_table();
  Normalizer n(NormKind::kMinMax);
  n.fit(t);
  n.apply(t);
  for (size_t r = 0; r < t.rows; ++r) {
    EXPECT_GE(t.at(r, 0), 0.0);
    EXPECT_LE(t.at(r, 0), 1.0);
  }
  EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(3, 0), 1.0);
  // Constant column is untouched (scale clamps to 1), stays finite.
  EXPECT_TRUE(std::isfinite(t.at(0, 2)));
}

TEST(Normalizer, ZScoreCentersData) {
  FeatureTable t = small_table();
  Normalizer n(NormKind::kZScore);
  n.fit(t);
  n.apply(t);
  double mean = 0.0;
  for (size_t r = 0; r < t.rows; ++r) mean += t.at(r, 0);
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-12);
}

TEST(Normalizer, TestDataUsesTrainStatistics) {
  FeatureTable train = small_table();
  Normalizer n(NormKind::kMinMax);
  n.fit(train);
  FeatureTable test = FeatureTable::make(1, {"a", "b", "c"});
  test.at(0, 0) = 6.0;  // outside the train range
  n.apply(test);
  EXPECT_DOUBLE_EQ(test.at(0, 0), 2.0);  // (6-0)/3 — no re-fit on test
}

TEST(CorrelationFilter, DropsDuplicatesAndConstants) {
  const FeatureTable t = small_table();
  CorrelationFilter f(0.95);
  f.fit(t);
  const FeatureTable s = f.apply(t);
  // b (duplicate of a) and c (constant) are gone.
  ASSERT_EQ(s.cols, 1u);
  EXPECT_EQ(s.col_names[0], "a");
}

TEST(CorrelationFilter, KeepsIndependentColumns) {
  FeatureTable t = FeatureTable::make(8, {"x", "y"});
  const double xs[] = {0, 1, 2, 3, 4, 5, 6, 7};
  const double ys[] = {3, 1, 4, 1, 5, 9, 2, 6};
  for (size_t r = 0; r < 8; ++r) {
    t.at(r, 0) = xs[r];
    t.at(r, 1) = ys[r];
  }
  CorrelationFilter f(0.95);
  f.fit(t);
  EXPECT_EQ(f.apply(t).cols, 2u);
}

TEST(Impute, ReplacesNonFinite) {
  FeatureTable t = FeatureTable::make(2, {"a"});
  t.at(0, 0) = std::nan("");
  t.at(1, 0) = std::numeric_limits<double>::infinity();
  EXPECT_EQ(impute_non_finite(t), 2u);
  EXPECT_EQ(t.at(0, 0), 0.0);
  EXPECT_EQ(t.at(1, 0), 0.0);
  EXPECT_EQ(impute_non_finite(t), 0u);
}

TEST(ColumnCorrelation, PerfectAndNone) {
  const FeatureTable t = small_table();
  EXPECT_NEAR(column_correlation(t, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(column_correlation(t, 0, 2), 0.0, 1e-12);
}

}  // namespace
}  // namespace lumen::features
