// Benchmarking-suite tests: protocols, caching, per-attack breakdowns,
// merged training, the result store, and the report renderers.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "eval/benchmark.h"
#include "eval/literature.h"
#include "eval/report.h"
#include "eval/results.h"

namespace lumen::eval {
namespace {

Benchmark& bench() {
  static Benchmark b = [] {
    Benchmark::Options opts;
    opts.dataset_scale = 0.25;  // keep the suite fast
    opts.max_train_rows = 1200;
    opts.max_test_rows = 1200;
    return Benchmark(opts);
  }();
  return b;
}

TEST(Benchmark, SameDatasetProducesSaneRecord) {
  auto run = bench().same_dataset("A14", "F4");
  ASSERT_TRUE(run.ok()) << run.error().message;
  const EvalRecord& r = run.value().record;
  EXPECT_EQ(r.algo, "A14");
  EXPECT_EQ(r.train_ds, "F4");
  EXPECT_EQ(r.test_ds, "F4");
  EXPECT_GE(r.precision, 0.0);
  EXPECT_LE(r.precision, 1.0);
  EXPECT_GT(r.n_train, 0u);
  EXPECT_GT(r.n_test, 0u);
  EXPECT_EQ(run.value().predictions.y_true.size(), r.n_test);
  // A supervised RF on Mirai traffic should do well in-distribution.
  EXPECT_GT(r.f1, 0.7);
}

TEST(Benchmark, FeatureCachingReturnsSamePointer) {
  auto a = bench().features("A14", "F4");
  auto b = bench().features("A14", "F4");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(Benchmark, IncompatiblePairIsRejected) {
  auto run = bench().same_dataset("A14", "P1");  // conn algo, packet dataset
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.error().message.find("faithfully"), std::string::npos);
}

TEST(Benchmark, CrossDatasetUsesTrainSetModel) {
  auto same = bench().same_dataset("A14", "F4");
  auto cross = bench().cross_dataset("A14", "F4", "F7");
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(cross.ok()) << cross.error().message;
  EXPECT_EQ(cross.value().record.train_ds, "F4");
  EXPECT_EQ(cross.value().record.test_ds, "F7");
}

TEST(Benchmark, SplitByTimeIsOrderedAndComplete) {
  auto feats = bench().features("A14", "F5");
  ASSERT_TRUE(feats.ok());
  auto [train, test] = Benchmark::split_by_time(*feats.value(), 0.7);
  EXPECT_EQ(train.rows + test.rows, feats.value()->rows);
  double tmax = -1e30;
  for (double t : train.unit_time) tmax = std::max(tmax, t);
  for (double t : test.unit_time) EXPECT_GE(t, tmax - 1e9 * 0);
}

TEST(Benchmark, PerAttackScoresCoverTestAttacks) {
  auto run = bench().same_dataset("A10", "F1");
  ASSERT_TRUE(run.ok());
  const auto scores = bench().per_attack(run.value());
  ASSERT_FALSE(scores.empty());
  for (const AttackScore& s : scores) {
    EXPECT_NE(s.attack, trace::AttackType::kNone);
    EXPECT_GE(s.precision, 0.0);
    EXPECT_LE(s.precision, 1.0);
    EXPECT_GT(s.positives, 0u);
  }
}

TEST(Benchmark, MergedTrainingRunsOverConnectionDatasets) {
  auto run = bench().merged_training("A14", 0.1);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_EQ(run.value().record.train_ds, "merged");
  EXPECT_GT(run.value().record.n_train, 0u);
}

TEST(ResultStore, AddQueryValue) {
  ResultStore store;
  EvalRecord rec;
  rec.algo = "A14";
  rec.train_ds = "F4";
  rec.test_ds = "F7";
  rec.precision = 0.91;
  rec.recall = 0.5;
  store.add_record(rec);
  EXPECT_EQ(store.size(), 5u);  // five metrics per record
  auto rows = store.query("A14", "", "", "precision");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 0.91);
  EXPECT_TRUE(store.value("A14", "F4", "F7", "recall").has_value());
  EXPECT_FALSE(store.value("A00", "F4", "F7", "recall").has_value());
}

TEST(ResultStore, AttackScoreRows) {
  ResultStore store;
  EvalRecord rec;
  rec.algo = "A10";
  rec.train_ds = rec.test_ds = "F1";
  AttackScore s;
  s.attack = trace::AttackType::kDosHulk;
  s.precision = 0.8;
  s.recall = 0.7;
  s.positives = 10;
  store.add_attack_scores(rec, {s});
  auto rows = store.query("A10", "F1", "F1", "precision@DoS-Hulk");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 0.8);
}

TEST(ResultStore, CsvRoundtrip) {
  ResultStore store;
  store.add(ResultRow{"A01", "F0", "F1", "precision", 0.5});
  store.add(ResultRow{"A02", "F2", "F3", "recall", 0.25});
  const std::string path =
      (std::filesystem::temp_directory_path() / "lumen_results.csv").string();
  ASSERT_TRUE(store.save_csv(path).ok());
  auto loaded = ResultStore::load_csv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().rows()[1].value, 0.25);
  std::filesystem::remove(path);
}

TEST(Heatmap, RenderMarksMissingAsGray) {
  Heatmap h = Heatmap::make("test", {"r1", "r2"}, {"c1", "c2"});
  h.at(0, 0) = 0.95;
  h.at(1, 1) = 0.1;
  const std::string text = h.render();
  EXPECT_NE(text.find("--"), std::string::npos);   // gray cell
  EXPECT_NE(text.find("0.95"), std::string::npos);
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("r1,0.9500,"), std::string::npos);
}

TEST(Distribution, FiveNumberSummary) {
  Distribution d = Distribution::from("x", {0.0, 0.25, 0.5, 0.75, 1.0});
  EXPECT_EQ(d.n, 5u);
  EXPECT_DOUBLE_EQ(d.min, 0.0);
  EXPECT_DOUBLE_EQ(d.q25, 0.25);
  EXPECT_DOUBLE_EQ(d.median, 0.5);
  EXPECT_DOUBLE_EQ(d.q75, 0.75);
  EXPECT_DOUBLE_EQ(d.max, 1.0);
  const std::string text = render_distributions("t", {d});
  EXPECT_NE(text.find("x"), std::string::npos);
}

TEST(Literature, TableHasElevenEntries) {
  EXPECT_EQ(literature_survey().size(), 11u);
  EXPECT_FALSE(render_literature_table().empty());
}

TEST(Literature, HalfTheAlgorithmsHaveNoComparison) {
  // Fig. 1a's headline: for about half the algorithms, no literature-level
  // comparison is possible (private datasets).
  const auto comparisons = possible_comparisons();
  size_t zero = 0;
  for (const auto& [algo, n] : comparisons) zero += (n == 0);
  EXPECT_GE(zero, comparisons.size() / 2);
  // nPrint and Smart Detect share CICIDS2017.
  for (const auto& [algo, n] : comparisons) {
    if (algo == "Nprint" || algo == "Smart Detect") {
      EXPECT_GE(n, 1);
    }
    if (algo == "Kitsune") {
      EXPECT_EQ(n, 0);  // custom dataset only
    }
  }
}

}  // namespace
}  // namespace lumen::eval
