// Grid-search hyperparameter tuning tests.
#include <gtest/gtest.h>

#include <set>

#include "ml/forest.h"
#include "ml/tree.h"
#include "ml/tuning.h"

namespace lumen::ml {
namespace {

FeatureTable blobs(size_t n_per_class, double gap, uint64_t seed) {
  FeatureTable t = FeatureTable::make(2 * n_per_class, {"x", "y", "z"});
  Rng rng(seed);
  for (size_t i = 0; i < t.rows; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    for (size_t d = 0; d < 3; ++d) {
      t.at(i, d) = rng.normal(label * gap, 1.0);
    }
    t.labels[i] = label;
  }
  return t;
}

TEST(ParamGrid, CartesianProductDeterministic) {
  ParamGrid grid;
  grid.axes["a"] = {1.0, 2.0};
  grid.axes["b"] = {10.0, 20.0, 30.0};
  const auto points = grid.points();
  ASSERT_EQ(points.size(), 6u);
  // Every combination appears exactly once.
  std::set<std::pair<double, double>> seen;
  for (const ParamPoint& p : points) {
    seen.insert({p.at("a"), p.at("b")});
  }
  EXPECT_EQ(seen.size(), 6u);
  // Deterministic ordering across calls.
  EXPECT_EQ(grid.points().front().at("a"), points.front().at("a"));
}

TEST(ParamGrid, EmptyGridIsSinglePoint) {
  ParamGrid grid;
  EXPECT_EQ(grid.points().size(), 1u);
  EXPECT_TRUE(grid.points()[0].empty());
}

TEST(KFold, PartitionsAllRowsEvenly) {
  const auto fold = kfold_assignment(100, 4, 7);
  ASSERT_EQ(fold.size(), 100u);
  size_t counts[4] = {0, 0, 0, 0};
  for (size_t f : fold) {
    ASSERT_LT(f, 4u);
    ++counts[f];
  }
  for (size_t c : counts) EXPECT_EQ(c, 25u);
  // Deterministic for the same seed, different for another.
  EXPECT_EQ(kfold_assignment(100, 4, 7), fold);
  EXPECT_NE(kfold_assignment(100, 4, 8), fold);
}

TEST(GridSearch, FindsTheBetterDepth) {
  // XOR-ish structure needs depth >= 2; depth 1 underfits badly.
  FeatureTable t = FeatureTable::make(400, {"x", "y"});
  Rng rng(21);
  for (size_t i = 0; i < t.rows; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    t.at(i, 0) = x;
    t.at(i, 1) = y;
    t.labels[i] = (x > 0) == (y > 0) ? 1 : 0;
  }
  ParamGrid grid;
  grid.axes["max_depth"] = {1.0, 6.0};
  const TuneResult result = grid_search(
      [](const ParamPoint& p) -> ModelPtr {
        TreeConfig cfg;
        cfg.max_depth = static_cast<int>(p.at("max_depth"));
        return std::make_shared<DecisionTree>(cfg);
      },
      t, grid, 3);
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_EQ(result.best.params.at("max_depth"), 6.0);
  EXPECT_GT(result.best.mean_score, 0.8);
}

TEST(GridSearch, ReportsAllTrialsWithScores) {
  const FeatureTable t = blobs(80, 4.0, 23);
  ParamGrid grid;
  grid.axes["n_trees"] = {5.0, 10.0};
  grid.axes["max_depth"] = {4.0, 8.0};
  const TuneResult result = grid_search(
      [](const ParamPoint& p) -> ModelPtr {
        ForestConfig cfg;
        cfg.n_trees = static_cast<size_t>(p.at("n_trees"));
        cfg.max_depth = static_cast<int>(p.at("max_depth"));
        return std::make_shared<RandomForest>(cfg);
      },
      t, grid, 3);
  ASSERT_EQ(result.trials.size(), 4u);
  for (const Trial& trial : result.trials) {
    EXPECT_GE(trial.mean_score, 0.0);
    EXPECT_LE(trial.mean_score, 1.0);
    EXPECT_GE(trial.std_score, 0.0);
  }
}

TEST(GridSearch, DegenerateInputsHandled) {
  const FeatureTable tiny = blobs(1, 1.0, 29);
  ParamGrid grid;
  grid.axes["max_depth"] = {2.0};
  const TuneResult r = grid_search(
      [](const ParamPoint&) -> ModelPtr {
        return std::make_shared<DecisionTree>();
      },
      tiny, grid, 5);  // more folds than rows
  EXPECT_TRUE(r.trials.empty());
  EXPECT_LT(r.best.mean_score, 0.0);
}

}  // namespace
}  // namespace lumen::ml
