// Golden-equivalence tests for the packed-key KitsuneExtractor: the hot
// path must emit feature vectors bit-identical to the retired string-keyed
// implementation (core/kitsune_extractor_ref.h) on every packet of every
// corpus trace — including non-IP frames — and the context-eviction cap
// must bound the tracked state.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/kitsune_extractor.h"
#include "core/kitsune_extractor_ref.h"
#include "netio/builder.h"
#include "netio/parse.h"
#include "trace/registry.h"

namespace lumen::core {
namespace {

using netio::Bytes;
using netio::MacAddr;
using netio::RawPacket;
using netio::Trace;

void expect_bit_identical(const Trace& trace, std::vector<double> lambdas = {},
                          const char* what = "") {
  KitsuneExtractor packed(lambdas);
  ReferenceKitsuneExtractor ref(lambdas);
  ASSERT_EQ(packed.dim(), ref.dim());
  std::vector<double> a, b;
  for (size_t i = 0; i < trace.view.size(); ++i) {
    packed.process(trace.view[i], a);
    ref.process(trace.view[i], b);
    ASSERT_EQ(a.size(), b.size());
    // Bit-level comparison: the refactor must not change a single ULP
    // (memcmp also distinguishes -0.0 from 0.0, which == would not).
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what << ": packet " << i << " of " << trace.view.size();
  }
  EXPECT_EQ(packed.tracked_contexts(), ref.tracked_contexts()) << what;
}

TEST(ExtractorGolden, P1MiraiCapture) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.15);
  ASSERT_GT(ds.trace.view.size(), 500u);
  expect_bit_identical(ds.trace, {}, "P1");
}

TEST(ExtractorGolden, P2Dot11Capture) {
  // 802.11 capture: exercises the non-IP (management/control frame) path
  // on a full synthetic dataset.
  const trace::Dataset ds = trace::make_dataset("P2", 0.15);
  ASSERT_GT(ds.trace.view.size(), 100u);
  size_t non_ip = 0;
  for (const auto& v : ds.trace.view) non_ip += v.has_ip ? 0 : 1;
  EXPECT_GT(non_ip, 0u) << "P2 should contain non-IP frames";
  expect_bit_identical(ds.trace, {}, "P2");
}

TEST(ExtractorGolden, P3SynDosCapture) {
  const trace::Dataset ds = trace::make_dataset("P3", 0.15);
  ASSERT_GT(ds.trace.view.size(), 500u);
  expect_bit_identical(ds.trace, {}, "P3");
}

TEST(ExtractorGolden, P4SsdpFuzzingCapture) {
  const trace::Dataset ds = trace::make_dataset("P4", 0.15);
  expect_bit_identical(ds.trace, {}, "P4");
}

// Hand-built Ethernet trace interleaving TCP/UDP with ARP (non-IP) frames,
// port-sharing across IP pairs, both channel directions, and repeated
// timestamps — the corners where key packing could diverge from the
// string keys.
Trace mixed_trace() {
  const MacAddr m1{2, 0, 0, 0, 0, 1}, m2{2, 0, 0, 0, 0, 2},
      m3{2, 0, 0, 0, 0, 3};
  const uint32_t a = 0x0a000001, b = 0x0a000002, c = 0xc0a80101;
  Trace t;
  double ts = 50.0;
  auto add = [&](Bytes frame, double dt) {
    ts += dt;
    t.raw.push_back(RawPacket{ts, std::move(frame)});
  };
  netio::TcpOpts tcp;
  for (int round = 0; round < 40; ++round) {
    add(netio::build_tcp(m1, m2, a, b, 1234, 80, tcp, Bytes(round % 9, 'x')),
        0.002);
    // Reverse direction of the same channel and socket.
    add(netio::build_tcp(m2, m1, b, a, 80, 1234, tcp, Bytes(round % 5, 'y')),
        0.0);  // repeated timestamp: zero inter-arrival jitter
    // ARP probe: non-IP frame between IP packets.
    add(netio::build_arp(m1, m2, 1, m1, a, MacAddr{}, b), 0.001);
    // Same IP pair, different ports -> same channel, distinct socket.
    add(netio::build_udp(m1, m2, a, b, 5353, 5353, Bytes(4, 'z')), 0.003);
    // Same ports on a different pair; src > dst exercises reverse canon.
    add(netio::build_tcp(m3, m1, c, a, 1234, 80, tcp, Bytes(2, 'q')), 0.004);
  }
  netio::parse_trace(t);
  return t;
}

TEST(ExtractorGolden, MixedArpTcpUdpTrace) {
  const Trace t = mixed_trace();
  ASSERT_EQ(t.view.size(), 200u);
  size_t non_ip = 0;
  for (const auto& v : t.view) non_ip += v.has_ip ? 0 : 1;
  EXPECT_EQ(non_ip, 40u);
  expect_bit_identical(t, {}, "mixed");
}

TEST(ExtractorGolden, NonDefaultLambdas) {
  const Trace t = mixed_trace();
  expect_bit_identical(t, {2.0, 0.5}, "lambdas{2,0.5}");
  expect_bit_identical(t, {1.0}, "lambdas{1}");
}

TEST(ExtractorEviction, CapBoundsTrackedContexts) {
  // A scan-like stream: every packet a fresh source IP/MAC/socket, far
  // more distinct contexts than the cap.
  const size_t kCap = 64;
  KitsuneExtractor ex({}, kCap);
  EXPECT_EQ(ex.max_contexts(), kCap);
  std::vector<double> row;
  const MacAddr dst{2, 0, 0, 0, 0, 2};
  for (uint32_t i = 0; i < 2000; ++i) {
    MacAddr src{2, 0, 1, 0, 0, 0};
    src[4] = static_cast<uint8_t>(i >> 8);
    src[5] = static_cast<uint8_t>(i & 0xff);
    Bytes frame = netio::build_tcp(src, dst, 0x0a010000 + i, 0x0a000002,
                                   static_cast<uint16_t>(1024 + i), 80,
                                   netio::TcpOpts{}, Bytes(8, 'x'));
    RawPacket raw{100.0 + 0.001 * i, std::move(frame)};
    auto parsed = netio::parse_packet(raw, netio::LinkType::kEthernet, i);
    ASSERT_TRUE(parsed.ok());
    ex.process(parsed.value(), row);
    const auto counts = ex.context_counts();
    EXPECT_LE(counts.mac, kCap);
    EXPECT_LE(counts.src, kCap);
    EXPECT_LE(counts.chan, kCap);
    EXPECT_LE(counts.sock, kCap);
  }
  // tracked_contexts sums 5 statistics per lambda per context.
  EXPECT_LE(ex.tracked_contexts(), 5 * kCap * ex.lambdas().size());
  EXPECT_GT(ex.tracked_contexts(), 0u);
}

TEST(ExtractorEviction, ActiveContextSurvivesGc) {
  // One hot channel plus a flood of one-shot scanners: after eviction the
  // hot channel's statistics must keep their accumulated weight (the GC
  // keeps the highest decayed-weight contexts).
  const size_t kCap = 32;
  KitsuneExtractor ex({}, kCap);
  const MacAddr hot_src{2, 0, 0, 0, 0, 1}, dst{2, 0, 0, 0, 0, 2};
  std::vector<double> row;
  double ts = 100.0;
  auto feed = [&](const Bytes& frame, uint32_t idx) {
    RawPacket raw{ts, frame};
    auto parsed = netio::parse_packet(raw, netio::LinkType::kEthernet, idx);
    ASSERT_TRUE(parsed.ok());
    ex.process(parsed.value(), row);
  };
  for (uint32_t i = 0; i < 500; ++i) {
    ts += 0.001;
    feed(netio::build_tcp(hot_src, dst, 0x0a000001, 0x0a000002, 1234, 80,
                          netio::TcpOpts{}, Bytes(8, 'x')),
         i);
    MacAddr scan{2, 1, 0, 0, 0, 0};
    scan[4] = static_cast<uint8_t>(i >> 8);
    scan[5] = static_cast<uint8_t>(i & 0xff);
    ts += 0.0001;
    feed(netio::build_udp(scan, dst, 0x0b000000 + i, 0x0a000002,
                          static_cast<uint16_t>(2000 + (i % 60000)), 53,
                          Bytes(2, 's')),
         1000 + i);
  }
  // The hot channel's mac weight (first feature, fastest lambda) reflects
  // hundreds of inserts; a freshly-recreated context would sit near 1.
  ts += 0.001;
  feed(netio::build_tcp(hot_src, dst, 0x0a000001, 0x0a000002, 1234, 80,
                        netio::TcpOpts{}, Bytes(8, 'x')),
       9999);
  EXPECT_GT(row[0], 2.0) << "hot context was evicted";
}

}  // namespace
}  // namespace lumen::core
