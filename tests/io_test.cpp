// Feature CSV persistence and the I/O operations (pcap_source,
// save_features, load_features).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/engine.h"
#include "features/csv.h"
#include "netio/pcap.h"
#include "trace/registry.h"

namespace lumen {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "lumen_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& n) const { return (dir_ / n).string(); }
  std::filesystem::path dir_;
};

features::FeatureTable sample_table() {
  features::FeatureTable t = features::FeatureTable::make(3, {"a", "b"});
  for (size_t r = 0; r < 3; ++r) {
    t.at(r, 0) = 1.5 * static_cast<double>(r);
    t.at(r, 1) = -0.25 + static_cast<double>(r);
    t.labels[r] = static_cast<int>(r % 2);
    t.unit_id[r] = static_cast<int64_t>(1000 + r);
    t.attack[r] = static_cast<uint8_t>(r);
    t.unit_time[r] = 1e9 + 0.125 * static_cast<double>(r);
  }
  return t;
}

TEST_F(IoTest, CsvRoundtripPreservesEverything) {
  const features::FeatureTable t = sample_table();
  ASSERT_TRUE(features::save_csv(t, path("t.csv")).ok());
  auto r = features::load_csv(path("t.csv"));
  ASSERT_TRUE(r.ok()) << r.error().message;
  const features::FeatureTable& u = r.value();
  ASSERT_EQ(u.rows, t.rows);
  ASSERT_EQ(u.cols, t.cols);
  EXPECT_EQ(u.col_names, t.col_names);
  EXPECT_EQ(u.labels, t.labels);
  EXPECT_EQ(u.unit_id, t.unit_id);
  EXPECT_EQ(u.attack, t.attack);
  for (size_t r2 = 0; r2 < t.rows; ++r2) {
    EXPECT_NEAR(u.unit_time[r2], t.unit_time[r2], 1e-6);
    for (size_t c = 0; c < t.cols; ++c) {
      EXPECT_DOUBLE_EQ(u.at(r2, c), t.at(r2, c));
    }
  }
}

TEST_F(IoTest, CsvRejectsForeignFiles) {
  std::FILE* f = std::fopen(path("x.csv").c_str(), "w");
  std::fprintf(f, "just,some,random,csv\n1,2,3,4\n");
  std::fclose(f);
  EXPECT_FALSE(features::load_csv(path("x.csv")).ok());
  EXPECT_FALSE(features::load_csv(path("missing.csv")).ok());
}

TEST_F(IoTest, PipelineOverPcapSource) {
  // Write a benchmark capture, then run a pipeline sourcing from the file.
  const trace::Dataset ds = trace::make_dataset("F4", 0.15);
  ASSERT_TRUE(netio::write_pcap(path("f4.pcap"), ds.trace).ok());

  const std::string tpl = R"([
    {"func": "pcap_source", "input": None, "output": "Packets",
     "path": ")" + path("f4.pcap") + R"("},
    {"func": "connections", "input": ["Packets"], "output": "Conns"},
    {"func": "conn_features", "input": ["Conns"], "output": "Features",
     "set": ["zeek"]},
    {"func": "save_features", "input": ["Features"], "output": "Saved",
     "path": ")" + path("features.csv") + R"("},
  ])";
  auto spec = core::PipelineSpec::parse(tpl);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  core::OpContext ctx;  // no registry dataset bound: pure pcap pipeline
  auto report = core::Engine().run(spec.value(), ctx);
  ASSERT_TRUE(report.ok()) << report.error().message;
  const auto* saved = report.value().get<features::FeatureTable>("Saved");
  ASSERT_NE(saved, nullptr);
  EXPECT_GT(saved->rows, 50u);

  // The persisted CSV reloads into an identical table via load_features.
  const std::string tpl2 = R"([
    {"func": "load_features", "input": None, "output": "Features",
     "path": ")" + path("features.csv") + R"("},
  ])";
  auto spec2 = core::PipelineSpec::parse(tpl2);
  ASSERT_TRUE(spec2.ok());
  core::OpContext ctx2;
  auto report2 = core::Engine().run(spec2.value(), ctx2);
  ASSERT_TRUE(report2.ok()) << report2.error().message;
  const auto* loaded = report2.value().get<features::FeatureTable>("Features");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->rows, saved->rows);
  EXPECT_EQ(loaded->cols, saved->cols);
}

TEST_F(IoTest, PcapSinkRoundtripsFilteredPackets) {
  const trace::Dataset ds = trace::make_dataset("F4", 0.15);
  core::OpContext ctx;
  ctx.dataset = &ds;
  const std::string tpl = R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "filter", "input": ["Packets"], "output": "Tcp",
     "require": ["is_tcp"]},
    {"func": "pcap_sink", "input": ["Tcp"], "output": "Sunk",
     "path": ")" + path("tcp_only.pcap") + R"("},
  ])";
  auto spec = core::PipelineSpec::parse(tpl);
  ASSERT_TRUE(spec.ok());
  auto report = core::Engine().run(spec.value(), ctx);
  ASSERT_TRUE(report.ok()) << report.error().message;
  auto reloaded = netio::read_pcap(path("tcp_only.pcap"));
  ASSERT_TRUE(reloaded.ok());
  ASSERT_GT(reloaded.value().size(), 100u);
  for (const auto& v : reloaded.value().view) {
    EXPECT_TRUE(v.has_tcp());
  }
}

TEST_F(IoTest, PcapSourceErrorsOnMissingFile) {
  auto spec = core::PipelineSpec::parse(R"([
    {"func": "pcap_source", "input": None, "output": "P",
     "path": "/nonexistent/never.pcap"},
  ])");
  ASSERT_TRUE(spec.ok());
  core::OpContext ctx;
  EXPECT_FALSE(core::Engine().run(spec.value(), ctx).ok());
}

TEST_F(IoTest, SaveFeaturesRequiresPath) {
  auto spec = core::PipelineSpec::parse(R"([
    {"func": "load_features", "input": None, "output": "F"},
  ])");
  ASSERT_TRUE(spec.ok());
  core::OpContext ctx;
  auto r = core::Engine().run(spec.value(), ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("path"), std::string::npos);
}

}  // namespace
}  // namespace lumen
