// Compiled inference plans (ml/compiled.h) against their source models:
//  * f64 plans are BIT-identical to the reference scoring paths — same
//    kernels, same accumulation order — for every compilable model family;
//  * f32 / i8 KitNET plans stay within a measured divergence bound, and the
//    f32 plan reproduces the reference alert set exactly on the P1-P4
//    golden captures (the deployment contract docs/framework.md states);
//  * plans honor the micro-batch contract (batch-size invariance);
//  * a compiled plan hot-swaps through IngestRuntime::deploy mid-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/ingest.h"
#include "core/stream.h"
#include "ml/compiled.h"
#include "ml/forest.h"
#include "ml/gmm.h"
#include "ml/kernel.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "ml/tree.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace lumen {
namespace {

using core::OnlineKitsune;
using features::FeatureTable;
using ml::compiled::Precision;

/// Two Gaussian blobs in `dims` dimensions separated by `gap` stddevs.
FeatureTable blobs(size_t n_per_class, size_t dims, double gap,
                   uint64_t seed) {
  std::vector<std::string> names;
  for (size_t d = 0; d < dims; ++d) names.push_back("f" + std::to_string(d));
  FeatureTable t = FeatureTable::make(2 * n_per_class, names);
  Rng rng(seed);
  for (size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    for (size_t d = 0; d < dims; ++d) {
      t.at(i, d) = rng.normal(label == 0 ? 0.0 : gap, 1.0);
    }
    t.labels[i] = label;
    t.unit_id[i] = static_cast<int64_t>(i);
    t.unit_time[i] = static_cast<double>(i);
  }
  return t;
}

/// A detector trained on the benign prefix of one golden capture, plus the
/// live remainder to score.
struct TrainedKitsune {
  OnlineKitsune det;
  std::span<const netio::PacketView> live;
};

TrainedKitsune train_on(const trace::Dataset& ds) {
  const size_t grace = ds.trace.view.size() * 45 / 100;
  TrainedKitsune t;
  t.det.train(std::span<const netio::PacketView>(ds.trace.view.data(), grace));
  t.live = std::span<const netio::PacketView>(ds.trace.view.data() + grace,
                                              ds.trace.view.size() - grace);
  return t;
}

std::vector<double> score_live(OnlineKitsune det,
                               std::span<const netio::PacketView> live,
                               size_t chunk) {
  std::vector<double> scores(live.size(), 0.0);
  for (size_t lo = 0; lo < live.size(); lo += chunk) {
    const size_t n = std::min(chunk, live.size() - lo);
    det.score_packets(live.subspan(lo, n), scores.data() + lo);
  }
  return scores;
}

// ------------------------------------------------------------- KitNET f64

TEST(CompiledKitnet, F64PlanBitIdenticalToReferenceOnLiveStream) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.25);
  TrainedKitsune t = train_on(ds);

  OnlineKitsune compiled = t.det;
  auto r = compiled.compile(Precision::kF64);
  ASSERT_TRUE(r.ok()) << r.error().message;
  ASSERT_NE(compiled.compiled_plan(), nullptr);
  EXPECT_STREQ(compiled.compiled_plan()->kind(), "kitnet");
  EXPECT_EQ(compiled.compiled_plan()->precision(), Precision::kF64);
  EXPECT_EQ(compiled.compiled_plan()->dim(), t.det.extractor().dim());
  EXPECT_EQ(compiled.compiled_plan()->threshold(), t.det.threshold());
  EXPECT_GT(compiled.compiled_plan()->weight_bytes(), 0u);

  const std::vector<double> ref = score_live(t.det, t.live, 64);
  const std::vector<double> got = score_live(std::move(compiled), t.live, 64);
  ASSERT_EQ(ref.size(), got.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], got[i]) << "packet " << i;  // bitwise, not merely near
  }
}

TEST(CompiledKitnet, F64PlanSinglePacketMatchesMicroBatched) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.25);
  TrainedKitsune t = train_on(ds);
  ASSERT_TRUE(t.det.compile(Precision::kF64).ok());

  OnlineKitsune one_by_one = t.det;
  std::vector<double> single(t.live.size(), 0.0);
  for (size_t i = 0; i < t.live.size(); ++i) {
    single[i] = one_by_one.score_packet(t.live[i]);
  }
  const std::vector<double> batched = score_live(t.det, t.live, 64);
  const std::vector<double> ragged = score_live(t.det, t.live, 7);
  for (size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i], batched[i]) << "packet " << i;
    ASSERT_EQ(single[i], ragged[i]) << "packet " << i;
  }
}

// ------------------------------------------------- KitNET f32/i8 divergence

/// Max relative divergence of `got` against reference `ref`, guarding tiny
/// denominators with the reference score scale.
double max_rel_divergence(const std::vector<double>& ref,
                          const std::vector<double>& got) {
  double max_rel = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double denom = std::max(std::fabs(ref[i]), 1e-6);
    max_rel = std::max(max_rel, std::fabs(got[i] - ref[i]) / denom);
  }
  return max_rel;
}

TEST(CompiledKitnet, F32BoundedDivergenceAndAlertIdentityOnGoldens) {
  for (const char* name : {"P1", "P2", "P3", "P4"}) {
    const trace::Dataset ds = trace::make_dataset(name, 0.25);
    TrainedKitsune t = train_on(ds);
    OnlineKitsune f32 = t.det;
    ASSERT_TRUE(f32.compile(Precision::kF32).ok());
    EXPECT_EQ(f32.compiled_plan()->precision(), Precision::kF32);

    const std::vector<double> ref = score_live(t.det, t.live, 64);
    const std::vector<double> got = score_live(std::move(f32), t.live, 64);
    // Measured on the goldens: max relative divergence stays below ~2e-4
    // (f32 rounding through two AE layers); the gate leaves headroom but
    // still catches a broken kernel outright. Documented in
    // docs/framework.md and gated again on the bench side.
    EXPECT_LT(max_rel_divergence(ref, got), 1e-3) << name;
    // Deployment contract: the f32 plan's alert set is IDENTICAL to the
    // reference path's on the goldens.
    const double thr = t.det.threshold();
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i] > thr, got[i] > thr)
          << name << " packet " << i << " ref " << ref[i] << " f32 " << got[i];
    }
  }
}

TEST(CompiledKitnet, I8BoundedDivergenceOnGoldens) {
  for (const char* name : {"P1", "P2"}) {
    const trace::Dataset ds = trace::make_dataset(name, 0.25);
    TrainedKitsune t = train_on(ds);
    OnlineKitsune i8 = t.det;
    ASSERT_TRUE(i8.compile(Precision::kI8).ok());
    EXPECT_EQ(i8.compiled_plan()->precision(), Precision::kI8);
    // The int8 arena is much smaller than the f64 one (8 bytes -> 1 per
    // weight; norm/bias/scale stay f32).
    OnlineKitsune f64 = t.det;
    ASSERT_TRUE(f64.compile(Precision::kF64).ok());
    EXPECT_LT(i8.compiled_plan()->weight_bytes(),
              f64.compiled_plan()->weight_bytes());

    const std::vector<double> ref = score_live(t.det, t.live, 64);
    const std::vector<double> got = score_live(std::move(i8), t.live, 64);
    // Quantization error through two int8 layers; bound measured on the
    // goldens and documented. Alert identity is NOT contractual for i8 —
    // near-threshold packets may flip — so gate agreement away from the
    // threshold instead: disagreements must sit within the quantization
    // band around it.
    EXPECT_LT(max_rel_divergence(ref, got), 0.35) << name;
    const double thr = t.det.threshold();
    size_t flips = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
      if ((ref[i] > thr) != (got[i] > thr)) {
        ++flips;
        EXPECT_LT(std::fabs(ref[i] - thr) / std::max(thr, 1e-6), 0.35)
            << name << " packet " << i;
      }
    }
    EXPECT_LT(flips, std::max<size_t>(1, ref.size() / 20)) << name;
  }
}

// ------------------------------------------------------------ table models

struct CompileCase {
  std::string name;
  ml::ModelPtr model;
  const char* kind;
  bool predict_identical;  // plan predict == model predict (same tie rule)
};

std::vector<CompileCase> table_cases() {
  std::vector<CompileCase> cases;
  cases.push_back({"forest", std::make_shared<ml::RandomForest>(), "forest",
                   /*predict_identical=*/false});
  cases.push_back({"tree", std::make_shared<ml::DecisionTree>(), "tree",
                   /*predict_identical=*/false});
  cases.push_back({"gmm", std::make_shared<ml::Gmm>(), "gmm",
                   /*predict_identical=*/true});
  cases.push_back({"ocsvm", std::make_shared<ml::OneClassSvm>(), "ocsvm",
                   /*predict_identical=*/true});
  cases.push_back({"linear_ocsvm", std::make_shared<ml::LinearOneClassSvm>(),
                   "linear_ocsvm", /*predict_identical=*/true});
  cases.push_back({"linear_svm", std::make_shared<ml::LinearSvm>(), "linear",
                   /*predict_identical=*/false});
  cases.push_back({"logreg", std::make_shared<ml::LogisticRegression>(),
                   "linear", /*predict_identical=*/false});
  cases.push_back({"knn", std::make_shared<ml::Knn>(), "knn",
                   /*predict_identical=*/false});
  return cases;
}

TEST(CompiledTableModels, ScoresBitIdenticalToReference) {
  const FeatureTable train = blobs(150, 6, 3.0, 915);
  const FeatureTable test = blobs(90, 6, 3.0, 916);
  for (auto& c : table_cases()) {
    c.model->fit(train);
    auto plan = ml::compiled::compile(*c.model);
    ASSERT_TRUE(plan.ok()) << c.name << ": " << plan.error().message;
    EXPECT_STREQ(plan.value()->kind(), c.kind) << c.name;
    EXPECT_EQ(plan.value()->precision(), Precision::kF64) << c.name;
    EXPECT_EQ(plan.value()->supervised(), c.model->is_supervised()) << c.name;

    const ml::ModelPtr wrapped = ml::compiled::wrap(plan.value(), c.name);
    const std::vector<double> ref = c.model->score(test);
    const std::vector<double> got = wrapped->score(test);
    ASSERT_EQ(ref.size(), got.size()) << c.name;
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << c.name << " row " << i;  // bitwise
    }
    if (c.predict_identical) {
      EXPECT_EQ(c.model->predict(test), wrapped->predict(test)) << c.name;
    }
  }
}

// A tree plan's dim() is the highest split feature + 1, which can be
// narrower than the training table (here: trailing constant columns no
// split can use). wrap() must treat dim() as a minimum row width and score
// the wider table through ldx, not silently reject it.
TEST(CompiledTableModels, ForestScoresTableWiderThanPlanDim) {
  FeatureTable train = blobs(150, 4, 3.0, 917);
  FeatureTable test = blobs(90, 4, 3.0, 918);
  for (FeatureTable* t : {&train, &test}) {
    FeatureTable wide = FeatureTable::make(
        t->rows, {"f0", "f1", "f2", "f3", "pad0", "pad1"});
    for (size_t i = 0; i < t->rows; ++i) {
      for (size_t c = 0; c < t->cols; ++c) wide.at(i, c) = t->at(i, c);
      wide.at(i, 4) = 1.0;  // constant -> never a split candidate
      wide.at(i, 5) = -2.5;
    }
    wide.labels = t->labels;
    *t = std::move(wide);
  }
  ml::RandomForest forest;
  forest.fit(train);
  auto plan = ml::compiled::compile(forest);
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  ASSERT_LE(plan.value()->dim(), size_t{4});
  const ml::ModelPtr wrapped = ml::compiled::wrap(plan.value(), "forest");
  const std::vector<double> ref = forest.score(test);
  const std::vector<double> got = wrapped->score(test);
  ASSERT_EQ(ref.size(), got.size());
  bool any_nonzero = false;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], got[i]) << "row " << i;
    any_nonzero = any_nonzero || got[i] != 0.0;
  }
  EXPECT_TRUE(any_nonzero);  // zeros would mean the plan rejected the table
}

TEST(CompiledTableModels, PlanScoreRowsIsBatchSizeInvariant) {
  const FeatureTable train = blobs(120, 5, 3.0, 412);
  const FeatureTable test = blobs(70, 5, 3.0, 413);
  for (auto& c : table_cases()) {
    c.model->fit(train);
    auto plan = ml::compiled::compile(*c.model);
    ASSERT_TRUE(plan.ok()) << c.name;
    // The ocsvm plan inherits the reference's sq_dist_batch semantics: the
    // kernel switches between the direct per-row path and the GEMM
    // expansion at kSqDistBatchCrossover rows, so — exactly like the
    // reference OneClassSvm::score — results across different chunkings
    // agree to tight tolerance, not bitwise (dense_test pins the same
    // bound for the kernel itself). Every other plan is bitwise invariant.
    const bool bitwise = c.name != "ocsvm";
    ml::compiled::Scratch scratch;
    std::vector<double> whole(test.rows, 0.0);
    plan.value()->score_rows(test.data.data(), test.rows, test.cols,
                             whole.data(), scratch);
    for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64}}) {
      std::vector<double> chunked(test.rows, 0.0);
      for (size_t lo = 0; lo < test.rows; lo += chunk) {
        const size_t m = std::min(chunk, test.rows - lo);
        plan.value()->score_rows(test.data.data() + lo * test.cols, m,
                                 test.cols, chunked.data() + lo, scratch);
      }
      for (size_t i = 0; i < whole.size(); ++i) {
        if (bitwise) {
          ASSERT_EQ(whole[i], chunked[i])
              << c.name << " chunk " << chunk << " row " << i;
        } else {
          ASSERT_NEAR(whole[i], chunked[i], 1e-9)
              << c.name << " chunk " << chunk << " row " << i;
        }
      }
    }
  }
}

TEST(CompiledPlan, UnfittedModelsRefuseToCompile) {
  EXPECT_FALSE(ml::compiled::compile(ml::RandomForest()).ok());
  EXPECT_FALSE(ml::compiled::compile(ml::Gmm()).ok());
  EXPECT_FALSE(ml::compiled::compile(ml::OneClassSvm()).ok());
  EXPECT_FALSE(ml::compiled::compile(ml::LinearSvm()).ok());
  EXPECT_FALSE(ml::compiled::compile(ml::Knn()).ok());
  OnlineKitsune untrained;
  EXPECT_FALSE(untrained.compile().ok());
}

// ----------------------------------------------------------- hot swap

TEST(CompiledPlan, DeploysThroughModelSlotMidRun) {
  // Paced replay of P1 with a reference-scoring consumer; 60 ms in, deploy
  // a factory handing out the SAME detector compiled to an f64 plan. The
  // swap must land without disturbing the accounting invariants (every
  // packet scored exactly once, sink log == alert counter), proving a
  // compiled plan rides ModelSlot into a running consumer like any scorer.
  // (Alert-set equality with an unswapped run is NOT asserted: a swapped-in
  // detector copy restarts from post-training extractor state, which is the
  // documented hot-swap semantic for stateful scorers.)
  const trace::Dataset ds = trace::make_dataset("P1", 0.25);
  TrainedKitsune t = train_on(ds);
  OnlineKitsune compiled = t.det;
  ASSERT_TRUE(compiled.compile(Precision::kF64).ok());

  netio::ReplayOptions replay;
  replay.pace = true;  // pin wall clock so the deploy lands mid-stream
  replay.speed = 50.0;
  netio::TraceReplaySource src(ds.trace, replay);
  telemetry::Registry reg;
  core::IngestRuntime::Options opts;
  opts.consumers = 1;
  opts.registry = &reg;
  core::CollectingSink sink;
  core::IngestRuntime rt(
      opts,
      [&t](size_t) { return std::make_unique<core::KitsuneScorer>(t.det); },
      &sink);
  std::atomic<bool> ok{false};
  std::thread runner([&] {
    auto r = rt.run(src);
    ok.store(r.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  rt.deploy([&compiled](size_t) {
    return std::make_unique<core::KitsuneScorer>(compiled);
  });
  runner.join();
  ASSERT_TRUE(ok.load());

  const core::IngestStats s = rt.stats();
  EXPECT_EQ(s.scored + s.parse_skipped, s.enqueued);  // kBlock: lossless
  EXPECT_EQ(s.scored + s.parse_skipped,
            static_cast<uint64_t>(ds.trace.view.size()));
  EXPECT_EQ(static_cast<uint64_t>(sink.alerts().size()), s.alerted);
  EXPECT_EQ(reg.counter("ingest.swaps_applied").value(), 1u);
}

}  // namespace
}  // namespace lumen
