// Supervised model tests: each classifier must separate well-separated
// Gaussian blobs; trees respect structural limits; the parameterized suite
// sweeps every supervised model over several blob geometries.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "ml/automl.h"
#include "ml/bayes.h"
#include "ml/ensemble.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace lumen::ml {
namespace {

/// Two Gaussian blobs in `dims` dimensions separated by `gap` stddevs.
FeatureTable blobs(size_t n_per_class, size_t dims, double gap,
                   uint64_t seed) {
  std::vector<std::string> names;
  for (size_t d = 0; d < dims; ++d) names.push_back("f" + std::to_string(d));
  FeatureTable t = FeatureTable::make(2 * n_per_class, names);
  Rng rng(seed);
  for (size_t i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    for (size_t d = 0; d < dims; ++d) {
      t.at(i, d) = rng.normal(label == 0 ? 0.0 : gap, 1.0);
    }
    t.labels[i] = label;
    t.unit_id[i] = static_cast<int64_t>(i);
    t.unit_time[i] = static_cast<double>(i);
  }
  return t;
}

double train_test_f1(Model& m, double gap, size_t dims, uint64_t seed) {
  const FeatureTable train = blobs(150, dims, gap, seed);
  const FeatureTable test = blobs(80, dims, gap, seed + 1);
  m.fit(train);
  return f1(confusion(test.labels, m.predict(test)));
}

struct ModelCase {
  std::string name;
  std::function<ModelPtr()> make;
};

class SupervisedBlobs
    : public ::testing::TestWithParam<std::tuple<ModelCase, double>> {};

TEST_P(SupervisedBlobs, SeparatesBlobs) {
  const auto& [mc, gap] = GetParam();
  ModelPtr m = mc.make();
  const double score = train_test_f1(*m, gap, 4, 77);
  // Wide gap -> near perfect; moderate gap -> clearly better than chance.
  EXPECT_GT(score, gap >= 4.0 ? 0.95 : 0.75) << mc.name << " gap=" << gap;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SupervisedBlobs,
    ::testing::Combine(
        ::testing::Values(
            ModelCase{"tree", [] { return std::make_shared<DecisionTree>(); }},
            ModelCase{"forest", [] { return std::make_shared<RandomForest>(); }},
            ModelCase{"nb", [] { return std::make_shared<GaussianNB>(); }},
            ModelCase{"knn", [] { return std::make_shared<Knn>(); }},
            ModelCase{"svm", [] { return std::make_shared<LinearSvm>(); }},
            ModelCase{"logreg",
                      [] { return std::make_shared<LogisticRegression>(); }},
            ModelCase{"mlp",
                      [] {
                        MlpConfig cfg;
                        cfg.hidden = {16};
                        cfg.epochs = 40;
                        return std::make_shared<Mlp>(cfg);
                      }}),
        ::testing::Values(2.5, 4.0)),
    [](const auto& info) {
      return std::get<0>(info.param).name + "_gap" +
             (std::get<1>(info.param) >= 4.0 ? "wide" : "narrow");
    });

TEST(DecisionTree, RespectsMaxDepth) {
  TreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTree t(cfg);
  t.fit(blobs(200, 6, 1.0, 5));
  EXPECT_LE(t.depth(), 3);
  EXPECT_GT(t.node_count(), 1u);
}

TEST(DecisionTree, PureNodeIsLeaf) {
  FeatureTable t = blobs(50, 2, 3.0, 6);
  for (int& l : t.labels) l = 0;  // all one class
  DecisionTree tree;
  tree.fit(t);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 0);
}

TEST(DecisionTree, DeterministicForFixedSeed) {
  const FeatureTable data = blobs(100, 4, 2.0, 9);
  DecisionTree a, b;
  a.fit(data);
  b.fit(data);
  const FeatureTable test = blobs(50, 4, 2.0, 10);
  EXPECT_EQ(a.predict(test), b.predict(test));
}

TEST(RandomForest, HasConfiguredTreeCount) {
  ForestConfig cfg;
  cfg.n_trees = 7;
  RandomForest rf(cfg);
  rf.fit(blobs(60, 3, 2.0, 11));
  EXPECT_EQ(rf.tree_count(), 7u);
}

TEST(RandomForest, ScoresAreProbabilities) {
  RandomForest rf;
  const FeatureTable data = blobs(100, 3, 2.0, 13);
  rf.fit(data);
  for (double s : rf.score(data)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(GaussianNB, SingleClassTrainingDoesNotCrash) {
  FeatureTable t = blobs(30, 2, 1.0, 15);
  for (int& l : t.labels) l = 0;
  GaussianNB nb;
  nb.fit(t);
  const std::vector<int> pred = nb.predict(t);
  for (int p : pred) EXPECT_EQ(p, 0);
}

TEST(Knn, CapsTrainingRows) {
  KnnConfig cfg;
  cfg.k = 3;
  cfg.max_train_rows = 50;
  Knn knn(cfg);
  // Must still classify well after the reservoir cap.
  EXPECT_GT(train_test_f1(knn, 4.0, 3, 17), 0.9);
}

TEST(VotingEnsemble, MajorityBeatsWorstMember) {
  std::vector<ModelPtr> members = {
      std::make_shared<RandomForest>(),
      std::make_shared<GaussianNB>(),
      std::make_shared<DecisionTree>(),
  };
  VotingEnsemble ens(members);
  EXPECT_GT(train_test_f1(ens, 3.0, 4, 19), 0.85);
  EXPECT_EQ(ens.member_count(), 3u);
}

TEST(AutoMl, PicksAWinnerAndRefits) {
  AutoMl am;
  const double score = train_test_f1(am, 4.0, 4, 21);
  EXPECT_GT(score, 0.9);
  EXPECT_NE(am.winner(), "none");
  EXPECT_GE(am.winner_validation_f1(), 0.0);
}

TEST(AutoMl, TinyTrainingSetFallsBack) {
  AutoMl am;
  const FeatureTable tiny = blobs(3, 2, 4.0, 23);
  am.fit(tiny);  // < 8 rows: trains the first candidate without validation
  EXPECT_EQ(am.predict(tiny).size(), tiny.rows);
}

}  // namespace
}  // namespace lumen::ml
