// Tests for the streaming statistics primitives, including parameterized
// property sweeps comparing Welford against the naive two-pass computation
// and checking the decay laws of the damped (Kitsune) statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "features/stats.h"
#include "ml/model.h"

namespace lumen::features {
namespace {

TEST(RunningStats, MatchesNaiveOnKnownData) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.population_variance(), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

/// Property: Welford == naive over random streams of several sizes/scales.
class WelfordProperty : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(WelfordProperty, AgreesWithTwoPass) {
  const auto [n, scale] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 31 + static_cast<int>(scale)));
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.normal(10.0 * scale, scale);
  RunningStats rs;
  for (double x : xs) rs.add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(rs.mean(), mean, 1e-9 * std::max(1.0, std::fabs(mean)));
  EXPECT_NEAR(rs.population_variance(), var, 1e-7 * std::max(1.0, var));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WelfordProperty,
    ::testing::Combine(::testing::Values(2, 10, 100, 5000),
                       ::testing::Values(1.0, 1e-3, 1e6)));

TEST(DampedStat, NoDecayAtSameTimestamp) {
  DampedStat s(1.0);
  s.insert(10.0, 0.0);
  s.insert(20.0, 0.0);
  EXPECT_DOUBLE_EQ(s.weight(), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 15.0);
}

TEST(DampedStat, HalvesWeightPerHalfLife) {
  // lambda = 1 => factor 2^-dt: weight halves every 1 second.
  DampedStat s(1.0);
  s.insert(4.0, 0.0);
  s.decay(1.0);
  EXPECT_NEAR(s.weight(), 0.5, 1e-12);
  s.decay(2.0);
  EXPECT_NEAR(s.weight(), 0.25, 1e-12);
  // Mean is scale-invariant under decay.
  EXPECT_NEAR(s.mean(), 4.0, 1e-12);
}

TEST(DampedStat, VarianceIsNonNegative) {
  Rng rng(5);
  DampedStat s(0.5);
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += rng.exponential(3.0);
    s.insert(rng.lognormal(2.0, 1.0), t);
    EXPECT_GE(s.variance(), 0.0);
  }
}

/// Property: with constant inserts the damped mean equals the constant.
class DampedConstant : public ::testing::TestWithParam<double> {};

TEST_P(DampedConstant, MeanTracksConstant) {
  DampedStat s(GetParam());
  for (int i = 0; i < 50; ++i) s.insert(7.5, 0.1 * i);
  EXPECT_NEAR(s.mean(), 7.5, 1e-9);
  EXPECT_NEAR(s.variance(), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, DampedConstant,
                         ::testing::Values(5.0, 3.0, 1.0, 0.1, 0.01));

TEST(DampedStat2D, PccBounded) {
  Rng rng(9);
  DampedStat2D s(1.0);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.01;
    s.insert(static_cast<int>(rng.below(2)), rng.normal(100.0, 20.0), t);
    EXPECT_GE(s.pcc(), -1.0);
    EXPECT_LE(s.pcc(), 1.0);
    EXPECT_GE(s.magnitude(), 0.0);
    EXPECT_GE(s.radius(), 0.0);
  }
}

TEST(DampedStat2D, MagnitudeOfSymmetricStreams) {
  DampedStat2D s(0.1);
  for (int i = 0; i < 100; ++i) {
    s.insert(0, 3.0, 0.01 * i);
    s.insert(1, 4.0, 0.01 * i);
  }
  // magnitude = sqrt(3^2 + 4^2) = 5.
  EXPECT_NEAR(s.magnitude(), 5.0, 1e-6);
}

TEST(Entropy, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy_bits({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(entropy_bits({1.0, 1.0, 1.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(entropy_bits({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({0.0, 4.0}), 0.0);
}

TEST(Entropy, UniformMaximizes) {
  // Entropy of any non-uniform distribution over k symbols < log2(k).
  EXPECT_LT(entropy_bits({3.0, 1.0}), 1.0);
  EXPECT_LT(entropy_bits({10.0, 1.0, 1.0, 1.0}), 2.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, MedianOddCount) {
  std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

// Reference implementation for the property sweep: full sort, then the
// linear-interpolation formula percentile() documents.
double percentile_by_full_sort(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (!(p > 0.0)) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

TEST(Percentile, BoundarySemantics) {
  std::vector<double> empty;
  EXPECT_EQ(percentile(empty, 50.0), 0.0);

  std::vector<double> one = {7.5};
  for (double p : {-10.0, 0.0, 37.0, 50.0, 100.0, 250.0}) {
    std::vector<double> v = one;
    EXPECT_DOUBLE_EQ(percentile(v, p), 7.5) << "p=" << p;
  }

  // Out-of-range and NaN p clamp to the min/max instead of indexing out of
  // bounds (the regression this satellite pins).
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  std::vector<double> w = v;
  EXPECT_DOUBLE_EQ(percentile(w, -5.0), 1.0);
  w = v;
  EXPECT_DOUBLE_EQ(percentile(w, 0.0), 1.0);
  w = v;
  EXPECT_DOUBLE_EQ(percentile(w, 100.0), 4.0);
  w = v;
  EXPECT_DOUBLE_EQ(percentile(w, 1e9), 4.0);
  w = v;
  EXPECT_DOUBLE_EQ(percentile(w, std::nan("")), 1.0);
}

// Property sweep: the two-selection implementation must equal the
// full-sort reference on random inputs (with duplicates) at arbitrary p,
// including p values that land exactly on a rank.
TEST(Percentile, MatchesFullSortReferenceOnRandomInputs) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.below(40);
    std::vector<double> values(n);
    for (double& x : values) {
      // Small integer support forces duplicated values.
      x = static_cast<double>(rng.below(8)) * 1.5 - 3.0;
    }
    const double p = rng.uniform() * 120.0 - 10.0;  // sweep past both ends
    std::vector<double> scratch = values;
    EXPECT_DOUBLE_EQ(percentile(scratch, p),
                     percentile_by_full_sort(values, p))
        << "n=" << n << " p=" << p;
    // Exact-rank p: frac == 0, no interpolation partner needed.
    const double exact_p =
        100.0 * static_cast<double>(rng.below(n)) / static_cast<double>(n - 1 == 0 ? 1 : n - 1);
    scratch = values;
    EXPECT_DOUBLE_EQ(percentile(scratch, exact_p),
                     percentile_by_full_sort(values, exact_p))
        << "n=" << n << " exact p=" << exact_p;
  }
}

// Model threshold calibration shares percentile's boundary semantics
// (clamp out-of-range quantiles, NaN routes to the minimum) and its linear
// interpolation — quantile_threshold(s, q) == percentile(s, 100q).
TEST(QuantileThreshold, ClampsAndAgreesWithPercentile) {
  const std::vector<double> scores = {0.3, 0.1, 0.4, 0.2};
  EXPECT_DOUBLE_EQ(ml::quantile_threshold(scores, -1.0), 0.1);
  EXPECT_DOUBLE_EQ(ml::quantile_threshold(scores, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(ml::quantile_threshold(scores, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(ml::quantile_threshold(scores, 2.0), 0.4);
  EXPECT_DOUBLE_EQ(ml::quantile_threshold(scores, std::nan("")), 0.1);
  EXPECT_DOUBLE_EQ(ml::quantile_threshold({}, 0.5), 0.0);

  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> s(1 + rng.below(30));
    for (double& x : s) x = rng.uniform(-5.0, 5.0);
    const double q = rng.uniform();
    std::vector<double> copy = s;
    // Not bit-identical: quantile_threshold computes the rank from q while
    // percentile computes it from 100q/100, which can differ by an ulp in
    // the interpolation fraction.
    EXPECT_NEAR(ml::quantile_threshold(s, q), percentile(copy, q * 100.0),
                1e-12)
        << "q=" << q;
  }
}

}  // namespace
}  // namespace lumen::features
