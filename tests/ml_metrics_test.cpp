// Metric correctness against hand-computed cases plus statistical
// properties of the rank-based AUC.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace lumen::ml {
namespace {

TEST(Confusion, CountsAllCells) {
  const std::vector<int> y_true = {1, 1, 1, 0, 0, 0, 0, 1};
  const std::vector<int> y_pred = {1, 0, 1, 0, 1, 0, 0, 1};
  const Confusion c = confusion(y_true, y_pred);
  EXPECT_EQ(c.tp, 3u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 3u);
}

TEST(Metrics, HandComputedValues) {
  const Confusion c{.tp = 3, .fp = 1, .tn = 3, .fn = 1};
  EXPECT_DOUBLE_EQ(precision(c), 0.75);
  EXPECT_DOUBLE_EQ(recall(c), 0.75);
  EXPECT_DOUBLE_EQ(f1(c), 0.75);
  EXPECT_DOUBLE_EQ(accuracy(c), 0.75);
}

TEST(Metrics, DegenerateCasesDefinedAsZero) {
  // No predicted positives.
  EXPECT_DOUBLE_EQ(precision(Confusion{.tp = 0, .fp = 0, .tn = 5, .fn = 2}),
                   0.0);
  // No actual positives.
  EXPECT_DOUBLE_EQ(recall(Confusion{.tp = 0, .fp = 3, .tn = 5, .fn = 0}), 0.0);
  // Empty everything.
  EXPECT_DOUBLE_EQ(accuracy(Confusion{}), 0.0);
  EXPECT_DOUBLE_EQ(f1(Confusion{}), 0.0);
}

TEST(Auc, PerfectSeparation) {
  const std::vector<int> y = {0, 0, 0, 1, 1};
  const std::vector<double> s = {0.1, 0.2, 0.3, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(y, s), 1.0);
}

TEST(Auc, PerfectInversion) {
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<double> s = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(auc(y, s), 0.0);
}

TEST(Auc, AllTiedIsHalf) {
  const std::vector<int> y = {0, 1, 0, 1};
  const std::vector<double> s = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(y, s), 0.5);
}

TEST(Auc, HandComputedWithTies) {
  // Scores: pos {0.9, 0.5}, neg {0.5, 0.1}. Pairs: (0.9>0.5)=1, (0.9>0.1)=1,
  // (0.5=0.5)=0.5, (0.5>0.1)=1 -> 3.5/4 = 0.875.
  const std::vector<int> y = {1, 1, 0, 0};
  const std::vector<double> s = {0.9, 0.5, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(auc(y, s), 0.875);
}

TEST(Auc, SingleClassIsHalf) {
  const std::vector<int> y = {1, 1, 1};
  const std::vector<double> s = {0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(auc(y, s), 0.5);
}

TEST(Auc, RandomScoresNearHalf) {
  Rng rng(83);
  std::vector<int> y(4000);
  std::vector<double> s(4000);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.bernoulli(0.3) ? 1 : 0;
    s[i] = rng.uniform();
  }
  EXPECT_NEAR(auc(y, s), 0.5, 0.03);
}

TEST(Auc, InvariantToMonotoneTransform) {
  Rng rng(89);
  std::vector<int> y(500);
  std::vector<double> s1(500), s2(500);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.bernoulli(0.4) ? 1 : 0;
    s1[i] = rng.normal(y[i] * 1.0, 1.0);
    s2[i] = 3.0 * s1[i] + 100.0;  // strictly increasing transform
  }
  EXPECT_DOUBLE_EQ(auc(y, s1), auc(y, s2));
}

}  // namespace
}  // namespace lumen::ml
