// ThreadPool / parallel_for tests (the Ray-substitute map phase).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "common/parallel.h"

namespace lumen {
namespace {

// The CI container may expose a single core; force a multi-worker global
// pool so the concurrency paths are actually exercised. Must run before the
// first ThreadPool::global() call, hence a namespace-scope initializer.
[[maybe_unused]] const bool kForceThreads = [] {
  setenv("LUMEN_THREADS", "4", /*overwrite=*/0);
  // LUMEN_THREADS is clamped to the core count unless explicitly forced;
  // these tests need real oversubscription on single-core CI hosts.
  setenv("LUMEN_THREADS_FORCE", "1", /*overwrite=*/0);
  return true;
}();

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ParallelFor, CoversExactRange) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
               /*min_parallel=*/10);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  int hits = 0;
  parallel_for(5, 5, [&](size_t) { ++hits; });
  parallel_for(7, 3, [&](size_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(ParallelFor, SmallRangeRunsSerial) {
  // Below min_parallel the loop runs inline; order must be sequential.
  std::vector<size_t> order;
  parallel_for(0, 10, [&](size_t i) { order.push_back(i); },
               /*min_parallel=*/100);
  std::vector<size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelFor, SumMatchesSerial) {
  std::atomic<long long> sum{0};
  parallel_for(1, 10001, [&](size_t i) { sum.fetch_add(static_cast<long long>(i)); },
               /*min_parallel=*/16);
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

TEST(ParallelFor, NestedCallCompletesWithExactCoverage) {
  // A pool worker issuing parallel_for must not deadlock on the shared pool
  // (the old global-pending design did); the inner loop runs on the caller.
  ASSERT_GT(ThreadPool::global().size(), 1u);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(
      0, kOuter,
      [&](size_t o) {
        parallel_for(
            0, kInner,
            [&](size_t i) { hits[o * kInner + i].fetch_add(1); },
            /*min_parallel=*/1);
      },
      /*min_parallel=*/1);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, DeeplyNestedRunsSerialOnWorker) {
  std::atomic<int> count{0};
  parallel_for(
      0, 8,
      [&](size_t) {
        parallel_for(
            0, 8,
            [&](size_t) {
              parallel_for(0, 8, [&](size_t) { count.fetch_add(1); },
                           /*min_parallel=*/1);
            },
            /*min_parallel=*/1);
      },
      /*min_parallel=*/1);
  EXPECT_EQ(count.load(), 8 * 8 * 8);
}

TEST(ParallelFor, PropagatesFirstException) {
  std::atomic<int> ran{0};
  try {
    parallel_for(
        0, 512,
        [&](size_t i) {
          ran.fetch_add(1);
          if (i == 100) throw std::runtime_error("task failed");
        },
        /*min_parallel=*/1);
    FAIL() << "expected parallel_for to rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  // The pool must stay usable after an exception.
  std::atomic<int> after{0};
  parallel_for(0, 256, [&](size_t) { after.fetch_add(1); },
               /*min_parallel=*/1);
  EXPECT_EQ(after.load(), 256);
}

TEST(ParallelFor, SerialGuardForcesInlineExecution) {
  SerialGuard guard;
  std::vector<size_t> order;
  parallel_for(0, 2000, [&](size_t i) { order.push_back(i); },
               /*min_parallel=*/1);  // no atomics needed: must run inline
  ASSERT_EQ(order.size(), 2000u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("submit failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Error is consumed; the pool keeps working.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(TaskGroup, TracksOnlyItsOwnTasks) {
  ThreadPool pool(2);
  TaskGroup slow, fast;
  std::atomic<bool> slow_done{false};
  pool.submit(
      [&] {
        for (int i = 0; i < 200; ++i) std::this_thread::yield();
        slow_done.store(true);
      },
      &slow);
  std::atomic<int> fast_count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&fast_count] { fast_count.fetch_add(1); }, &fast);
  }
  fast.wait();  // must not wait on the slow group's task
  EXPECT_EQ(fast_count.load(), 8);
  slow.wait();
  EXPECT_TRUE(slow_done.load());
}

}  // namespace
}  // namespace lumen
