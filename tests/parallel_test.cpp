// ThreadPool / parallel_for tests (the Ray-substitute map phase).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/parallel.h"

namespace lumen {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ParallelFor, CoversExactRange) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
               /*min_parallel=*/10);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  int hits = 0;
  parallel_for(5, 5, [&](size_t) { ++hits; });
  parallel_for(7, 3, [&](size_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(ParallelFor, SmallRangeRunsSerial) {
  // Below min_parallel the loop runs inline; order must be sequential.
  std::vector<size_t> order;
  parallel_for(0, 10, [&](size_t i) { order.push_back(i); },
               /*min_parallel=*/100);
  std::vector<size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelFor, SumMatchesSerial) {
  std::atomic<long long> sum{0};
  parallel_for(1, 10001, [&](size_t i) { sum.fetch_add(static_cast<long long>(i)); },
               /*min_parallel=*/16);
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

}  // namespace
}  // namespace lumen
