// FlatMap (common/flat_map.h) unit tests: lookup/insert semantics, forced
// collisions under a degenerate hash, growth across rehashes, and the bulk
// retain() used for context eviction.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/flat_map.h"

namespace lumen {
namespace {

TEST(FlatMap, EmptyFindsNothing) {
  FlatMap<uint64_t, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(42), nullptr);
}

TEST(FlatMap, TryEmplaceInsertsOnceAndFinds) {
  FlatMap<uint64_t, int> m;
  auto [v1, fresh1] = m.try_emplace(7, 100);
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(*v1, 100);
  auto [v2, fresh2] = m.try_emplace(7, 999);  // existing: value untouched
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(*v2, 100);
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 100);
  *m.find(7) = 5;
  EXPECT_EQ(*m.find(7), 5);
}

// A hash that sends every key to one of two buckets forces long linear
// probe chains: correctness must not depend on hash quality.
struct DegenerateHash {
  uint64_t operator()(uint64_t k) const { return k & 1; }
};

TEST(FlatMap, SurvivesPathologicalCollisions) {
  FlatMap<uint64_t, uint64_t, DegenerateHash> m;
  for (uint64_t k = 0; k < 200; ++k) m.try_emplace(k, k * 3);
  EXPECT_EQ(m.size(), 200u);
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), k * 3);
  }
  EXPECT_EQ(m.find(1000), nullptr);
}

TEST(FlatMap, GrowthPreservesAllEntries) {
  FlatMap<uint64_t, uint64_t> m;
  const uint64_t n = 10000;
  for (uint64_t k = 0; k < n; ++k) {
    // Clustered keys exercise probe-chain relocation across rehashes.
    m.try_emplace(k * k + 17, k);
  }
  EXPECT_EQ(m.size(), n);
  EXPECT_GE(m.capacity(), n);
  // Power-of-two capacity.
  EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u);
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_NE(m.find(k * k + 17), nullptr) << k;
    EXPECT_EQ(*m.find(k * k + 17), k);
  }
}

TEST(FlatMap, ReserveAvoidsLaterGrowth) {
  FlatMap<uint64_t, int> m;
  m.reserve(1000);
  const size_t cap = m.capacity();
  for (uint64_t k = 0; k < 1000; ++k) m.try_emplace(k, 1);
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, RetainEvictsByPredicate) {
  FlatMap<uint64_t, uint64_t> m;
  for (uint64_t k = 0; k < 500; ++k) m.try_emplace(k, k);
  const size_t removed = m.retain(
      [](uint64_t k, const uint64_t&) { return k % 3 == 0; });
  EXPECT_EQ(removed, 500u - 167u);
  EXPECT_EQ(m.size(), 167u);  // 0, 3, ..., 498
  for (uint64_t k = 0; k < 500; ++k) {
    if (k % 3 == 0) {
      ASSERT_NE(m.find(k), nullptr) << k;
      EXPECT_EQ(*m.find(k), k);
    } else {
      EXPECT_EQ(m.find(k), nullptr) << k;
    }
  }
  // Evicted keys can be re-inserted cleanly.
  auto [v, fresh] = m.try_emplace(1, 11);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(*v, 11u);
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce) {
  FlatMap<uint64_t, uint64_t> m;
  for (uint64_t k = 10; k < 60; ++k) m.try_emplace(k, k);
  std::set<uint64_t> seen;
  m.for_each([&](uint64_t k, const uint64_t& v) {
    EXPECT_EQ(k, v);
    EXPECT_TRUE(seen.insert(k).second);
  });
  EXPECT_EQ(seen.size(), 50u);
}

TEST(FlatMap, ClearResets) {
  FlatMap<uint64_t, int> m;
  for (uint64_t k = 0; k < 100; ++k) m.try_emplace(k, 1);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(5), nullptr);
  m.try_emplace(5, 2);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, Key128DistinguishesHalves) {
  FlatMap<Key128, int> m;
  m.try_emplace(Key128{1, 2}, 12);
  m.try_emplace(Key128{2, 1}, 21);
  m.try_emplace(Key128{1, 3}, 13);
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(Key128{1, 2}), nullptr);
  EXPECT_EQ(*m.find(Key128{1, 2}), 12);
  ASSERT_NE(m.find(Key128{2, 1}), nullptr);
  EXPECT_EQ(*m.find(Key128{2, 1}), 21);
  EXPECT_EQ(m.find(Key128{3, 1}), nullptr);
}

}  // namespace
}  // namespace lumen
