// Execution engine tests: template parsing, static type checking, execution,
// profiling, and dead-value elimination — including the paper's own Fig. 4
// template end to end.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "trace/attacks.h"

namespace lumen::core {
namespace {

const trace::Dataset& dataset() {
  static const trace::Dataset ds = [] {
    trace::Sim sim(515151);
    trace::BenignStyle st;
    sim.benign_iot_traffic(0.0, 25.0, 3, st);
    trace::attack_brute_force(sim, 5.0, 15.0, sim.wan_ip(), sim.lan_ip(st, 0),
                              22, 1.0);
    return sim.finish("E0", "engine-test", trace::Granularity::kConnection);
  }();
  return ds;
}

OpContext make_ctx() {
  OpContext ctx;
  ctx.dataset = &dataset();
  return ctx;
}

TEST(Pipeline, CanonicalFuncNames) {
  EXPECT_EQ(canonical_func_name("Field Extract"), "field_extract");
  EXPECT_EQ(canonical_func_name("Groupby"), "groupby");
  EXPECT_EQ(canonical_func_name("TimeSlice"), "time_slice");
  EXPECT_EQ(canonical_func_name("ApplyAggregates"), "apply_aggregates");
  EXPECT_EQ(canonical_func_name("model"), "model");
}

TEST(Pipeline, ParsesPaperStyleTemplate) {
  auto spec = PipelineSpec::parse(R"(algorithm = [
    {'func': 'Field Extract', 'input': None, 'output': 'Packets',
     'param': ['srcIP', 'dstIP', 'TCPFlags', 'packetLength']},
    {'func': 'Groupby', 'input': ['Packets'], 'output': 'Grouped_packets',
     'flowid': ['srcIp']},
    {'func': 'TimeSlice', 'input': ['Grouped_packets'],
     'output': 'Sliced_packets', 'window': 10},
    {'func': 'ApplyAggregates', 'input': ['Sliced_packets'],
     'output': 'Features'},
  ])");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  ASSERT_EQ(spec.value().ops.size(), 4u);
  EXPECT_EQ(spec.value().ops[0].func, "field_extract");
  EXPECT_TRUE(spec.value().ops[0].inputs.empty());
  EXPECT_EQ(spec.value().ops[3].output, "Features");
}

TEST(Pipeline, RejectsEmptyAndMalformed) {
  EXPECT_FALSE(PipelineSpec::parse("[]").ok());
  EXPECT_FALSE(PipelineSpec::parse("{\"not\": \"array\"}").ok());
  EXPECT_FALSE(PipelineSpec::parse("[{\"output\": \"x\"}]").ok());  // no func
  EXPECT_FALSE(PipelineSpec::parse("[{\"func\": \"f\", \"input\": 3}]").ok());
}

TEST(Engine, TypeCheckCatchesUnknownOp) {
  auto spec = PipelineSpec::parse(
      R"([{"func": "does_not_exist", "input": None, "output": "x"}])");
  ASSERT_TRUE(spec.ok());
  Engine engine;
  auto check = engine.type_check(spec.value());
  ASSERT_FALSE(check.ok());
  EXPECT_NE(check.error().message.find("unknown operation"), std::string::npos);
}

TEST(Engine, TypeCheckCatchesUndefinedInput) {
  auto spec = PipelineSpec::parse(
      R"([{"func": "groupby", "input": ["Ghost"], "output": "g",
           "flowid": ["srcip"]}])");
  ASSERT_TRUE(spec.ok());
  auto check = Engine().type_check(spec.value());
  ASSERT_FALSE(check.ok());
  EXPECT_NE(check.error().message.find("Ghost"), std::string::npos);
}

TEST(Engine, TypeCheckCatchesKindMismatch) {
  // apply_aggregates expects GroupedPackets, gets PacketSet.
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "apply_aggregates", "input": ["Packets"], "output": "F"},
  ])");
  ASSERT_TRUE(spec.ok());
  auto check = Engine().type_check(spec.value());
  ASSERT_FALSE(check.ok());
  EXPECT_NE(check.error().message.find("PacketSet"), std::string::npos);
  EXPECT_NE(check.error().message.find("GroupedPackets"), std::string::npos);
}

TEST(Engine, TypeCheckCatchesTooManyInputs) {
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "A", "param": []},
    {"func": "groupby", "input": ["A", "A"], "output": "g",
     "flowid": ["srcip"]},
  ])");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(Engine().type_check(spec.value()).ok());
}

TEST(Engine, RunsPaperTemplateEndToEnd) {
  auto spec = PipelineSpec::parse(R"(algorithm = [
    {'func': 'Field Extract', 'input': None, 'output': 'Packets',
     'param': ['srcIP', 'dstIP', 'TCPFlags', 'packetLength']},
    {'func': 'Groupby', 'input': ['Packets'], 'output': 'Grouped_packets',
     'flowid': ['srcIp']},
    {'func': 'TimeSlice', 'input': ['Grouped_packets'],
     'output': 'Sliced_packets', 'window': 10},
    {'func': 'ApplyAggregates', 'input': ['Sliced_packets'],
     'output': 'Features'},
    {'func': 'model', 'model_type': 'RandomForest', 'input': None,
     'output': 'clf1'},
    {'func': 'train', 'input': ['clf1', 'Features'], 'output': 'clf_trained'},
    {'func': 'predict', 'input': ['clf_trained', 'Features'],
     'output': 'Preds'},
    {'func': 'evaluate', 'input': ['Preds'], 'output': 'Metrics'},
  ])");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  OpContext ctx = make_ctx();
  auto report = Engine().run(spec.value(), ctx);
  ASSERT_TRUE(report.ok()) << report.error().message;
  const Metrics* m = report.value().get<Metrics>("Metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->get("accuracy"), 0.5);
  // Profile covers every op.
  EXPECT_EQ(report.value().profile.size(), 8u);
  EXPECT_GT(report.value().peak_bytes, 0u);
  EXPECT_FALSE(report.value().profile_table().empty());
}

// The report's profile is rebuilt from the telemetry spans the run
// recorded, so re-deriving it from a registry snapshot must reproduce the
// same rows — and the spans must carry the op/output/bytes annotations.
TEST(Engine, ProfileRoundTripsThroughTelemetrySnapshot) {
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "groupby", "input": ["Packets"], "output": "Grouped",
     "flowid": ["srcip"]},
    {"func": "apply_aggregates", "input": ["Grouped"], "output": "Features"},
  ])");
  ASSERT_TRUE(spec.ok());
  telemetry::Registry reg;
  Engine::Options opts;
  opts.registry = &reg;
  opts.instrument_prefix = "e.";
  OpContext ctx = make_ctx();
  auto report = Engine(opts).run(spec.value(), ctx);
  ASSERT_TRUE(report.ok());
  const PipelineReport& r = report.value();
  ASSERT_EQ(r.profile.size(), 3u);
  ASSERT_EQ(r.span_ids.size(), 3u);

  const telemetry::Snapshot snap = reg.snapshot();
  const std::vector<OpProfile> rebuilt =
      profile_from_spans(snap, r.span_ids, "e.op.");
  ASSERT_EQ(rebuilt.size(), r.profile.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].func, r.profile[i].func);
    EXPECT_EQ(rebuilt[i].output, r.profile[i].output);
    EXPECT_DOUBLE_EQ(rebuilt[i].seconds, r.profile[i].seconds);
    EXPECT_EQ(rebuilt[i].output_bytes, r.profile[i].output_bytes);
    EXPECT_EQ(rebuilt[i].freed_early, r.profile[i].freed_early);
  }
  // The spans carry the profile's semantics directly.
  const telemetry::SpanRecord* first = snap.find_span(r.span_ids[0]);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name, "e.op.field_extract");
  EXPECT_EQ(first->detail, "Packets");
  EXPECT_EQ(first->value, r.profile[0].output_bytes);
  EXPECT_TRUE(first->flag);  // Packets was consumed and freed early
  // Run-level instruments landed under the configured prefix.
  EXPECT_EQ(snap.counter_value("e.ops"), 3u);
  EXPECT_GT(snap.gauge_value("e.peak_bytes"), 0.0);
}

// registry = nullptr keeps telemetry run-local; the report must still be
// fully populated.
TEST(Engine, NullRegistryStillProfiles) {
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "groupby", "input": ["P"], "output": "G", "flowid": ["srcip"]},
  ])");
  ASSERT_TRUE(spec.ok());
  Engine::Options opts;
  opts.registry = nullptr;
  OpContext ctx = make_ctx();
  auto report = Engine(opts).run(spec.value(), ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().profile.size(), 2u);
  EXPECT_GT(report.value().peak_bytes, 0u);
  EXPECT_FALSE(report.value().profile_table().empty());
}

TEST(Engine, DeadValueEliminationFreesConsumedBindings) {
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "groupby", "input": ["Packets"], "output": "Grouped",
     "flowid": ["srcip"]},
    {"func": "apply_aggregates", "input": ["Grouped"], "output": "Features"},
  ])");
  ASSERT_TRUE(spec.ok());
  OpContext ctx = make_ctx();
  auto report = Engine().run(spec.value(), ctx);
  ASSERT_TRUE(report.ok());
  // Packets and Grouped were consumed and freed; only Features survives.
  EXPECT_EQ(report.value().bindings.size(), 1u);
  EXPECT_NE(report.value().find("Features"), nullptr);
  EXPECT_EQ(report.value().find("Packets"), nullptr);
}

TEST(Engine, KeepOptionPreservesIntermediate) {
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "groupby", "input": ["Packets"], "output": "Grouped",
     "flowid": ["srcip"]},
    {"func": "apply_aggregates", "input": ["Grouped"], "output": "Features"},
  ])");
  ASSERT_TRUE(spec.ok());
  Engine::Options opts;
  opts.keep = {"Packets"};
  OpContext ctx = make_ctx();
  auto report = Engine(opts).run(spec.value(), ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().find("Packets"), nullptr);
}

TEST(Engine, DisablingEliminationKeepsEverything) {
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "groupby", "input": ["Packets"], "output": "Grouped",
     "flowid": ["srcip"]},
  ])");
  ASSERT_TRUE(spec.ok());
  Engine::Options opts;
  opts.free_dead_values = false;
  OpContext ctx = make_ctx();
  auto report = Engine(opts).run(spec.value(), ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().bindings.size(), 2u);
}

TEST(Engine, RebindingReplacesValue) {
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "filter", "input": ["P"], "output": "P", "require": ["is_tcp"]},
    {"func": "groupby", "input": ["P"], "output": "G", "flowid": ["srcip"]},
  ])");
  ASSERT_TRUE(spec.ok());
  OpContext ctx = make_ctx();
  auto report = Engine().run(spec.value(), ctx);
  ASSERT_TRUE(report.ok()) << report.error().message;
}

TEST(EngineOptions, NormalizedDedupesKeepAndDefaultsPrefix) {
  Engine::Options o;
  o.keep = {"features", "metrics", "features", "labels", "metrics"};
  o.instrument_prefix = "";
  std::string diag;
  const Engine::Options n = Engine::Options::normalized(o, &diag);
  const std::vector<std::string> want = {"features", "metrics", "labels"};
  EXPECT_EQ(want, n.keep);  // first occurrence wins
  EXPECT_EQ("engine.", n.instrument_prefix);
  EXPECT_NE(std::string::npos, diag.find("engine"));
  EXPECT_NE(std::string::npos, diag.find("keep"));
  EXPECT_NE(std::string::npos, diag.find("instrument_prefix"));

  // Already-normal options come back untouched with no diagnostic.
  Engine::Options clean;
  clean.keep = {"a", "b"};
  std::string diag2;
  const Engine::Options n2 = Engine::Options::normalized(clean, &diag2);
  EXPECT_EQ(clean.keep, n2.keep);
  EXPECT_EQ("", diag2);
}

TEST(Engine, RuntimeErrorNamesTheOp) {
  // one_hot on a missing column passes type check but fails at run time.
  auto spec = PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "P", "param": []},
    {"func": "packet_features", "input": ["P"], "output": "F",
     "param": ["len"]},
    {"func": "one_hot", "input": ["F"], "output": "F2", "column": "ghost"},
  ])");
  ASSERT_TRUE(spec.ok());
  OpContext ctx = make_ctx();
  auto report = Engine().run(spec.value(), ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("one_hot"), std::string::npos);
}

}  // namespace
}  // namespace lumen::core
