// Algorithm registry tests: completeness, faithfulness rules (§2.1), and a
// parameterized end-to-end sweep computing every algorithm's features on a
// compatible dataset.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "trace/registry.h"

namespace lumen::core {
namespace {

constexpr double kScale = 0.2;

const trace::Dataset& small(const std::string& id) {
  static std::map<std::string, trace::Dataset> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, trace::make_dataset(id, kScale)).first;
  }
  return it->second;
}

TEST(Registry, SixteenSurveyedPlusSynthesized) {
  EXPECT_EQ(surveyed_algorithm_ids().size(), 16u);
  EXPECT_EQ(synthesized_algorithm_ids().size(), 3u);
  EXPECT_EQ(algorithm_registry().size(), 19u);
  EXPECT_NE(find_algorithm("A06"), nullptr);
  EXPECT_EQ(find_algorithm("A99"), nullptr);
}

TEST(Registry, EveryTemplateParsesAndTypeChecks) {
  for (const AlgorithmDef& a : algorithm_registry()) {
    auto spec = PipelineSpec::parse(a.feature_template);
    ASSERT_TRUE(spec.ok()) << a.id << ": " << spec.error().message;
    auto check = Engine().type_check(spec.value());
    EXPECT_TRUE(check.ok()) << a.id << ": " << check.error().message;
    auto model = make_algorithm_model(a);
    EXPECT_TRUE(model.ok()) << a.id << ": " << model.error().message;
  }
}

TEST(Faithfulness, GranularityRules) {
  const AlgorithmDef& packet_algo = *find_algorithm("A00");
  const AlgorithmDef& conn_algo = *find_algorithm("A14");
  // Packet algorithms can run on coarser (connection-labeled) datasets...
  EXPECT_TRUE(compatible(packet_algo, small("F0")));
  EXPECT_TRUE(compatible(packet_algo, small("P0")));
  // ...but connection algorithms cannot run on packet-labeled datasets.
  EXPECT_FALSE(compatible(conn_algo, small("P0")));
  EXPECT_TRUE(compatible(conn_algo, small("F0")));
  // The figures use the strict pairing.
  EXPECT_FALSE(strict_faithful(packet_algo, small("F0")));
  EXPECT_TRUE(strict_faithful(packet_algo, small("P0")));
}

TEST(Faithfulness, OnlyKitsuneRunsOnAwid3) {
  const trace::Dataset& p2 = small("P2");
  for (const AlgorithmDef& a : algorithm_registry()) {
    if (a.id == "A06") {
      EXPECT_TRUE(compatible(a, p2)) << a.id;
    } else {
      EXPECT_FALSE(compatible(a, p2)) << a.id;
    }
  }
}

TEST(Faithfulness, SmartHomeIdsNeedsAppMetadata) {
  const AlgorithmDef& a05 = *find_algorithm("A05");
  size_t runnable = 0;
  for (const std::string& id : trace::all_dataset_ids()) {
    runnable += compatible(a05, small(id));
  }
  // "Algorithm A05 can only run on a single dataset" (paper, footnote 3).
  EXPECT_EQ(runnable, 1u);
  EXPECT_TRUE(compatible(a05, small("P0")));
}

TEST(Faithfulness, UniflowAlgosRunOnConnectionDatasets) {
  const AlgorithmDef& a10 = *find_algorithm("A10");
  EXPECT_TRUE(compatible(a10, small("F1")));
  EXPECT_TRUE(strict_faithful(a10, small("F1")));
  EXPECT_FALSE(strict_faithful(a10, small("P1")));
}

struct FeatureCase {
  std::string algo;
  std::string ds;
};

class FeatureSweep : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(FeatureSweep, ProducesUsableFeatureTable) {
  const auto& [algo_id, ds_id] = GetParam();
  const AlgorithmDef* algo = find_algorithm(algo_id);
  ASSERT_NE(algo, nullptr);
  auto t = compute_features(*algo, small(ds_id));
  ASSERT_TRUE(t.ok()) << algo_id << " on " << ds_id << ": "
                      << t.error().message;
  const features::FeatureTable& f = t.value();
  EXPECT_GT(f.rows, 10u) << algo_id;
  EXPECT_GT(f.cols, 0u) << algo_id;
  ASSERT_EQ(f.labels.size(), f.rows);
  ASSERT_EQ(f.unit_time.size(), f.rows);
  // Both classes should appear at the algorithm's unit granularity.
  size_t pos = 0;
  for (int l : f.labels) pos += (l != 0);
  EXPECT_GT(pos, 0u) << algo_id << " found no malicious units";
  EXPECT_LT(pos, f.rows) << algo_id << " found no benign units";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, FeatureSweep,
    ::testing::Values(FeatureCase{"A00", "P1"}, FeatureCase{"A01", "P1"},
                      FeatureCase{"A02", "P3"}, FeatureCase{"A03", "P4"},
                      FeatureCase{"A04", "P3"}, FeatureCase{"A05", "P0"},
                      FeatureCase{"A06", "P2"}, FeatureCase{"A07", "F4"},
                      FeatureCase{"A08", "F4"}, FeatureCase{"A09", "F3"},
                      FeatureCase{"A10", "F1"}, FeatureCase{"A11", "F2"},
                      FeatureCase{"A12", "F6"}, FeatureCase{"A13", "F0"},
                      FeatureCase{"A14", "F5"}, FeatureCase{"A15", "F9"},
                      FeatureCase{"AM01", "F7"}, FeatureCase{"AM02", "F8"},
                      FeatureCase{"AM03", "F0"}),
    [](const auto& info) { return info.param.algo + "_" + info.param.ds; });

TEST(FeatureShapes, KitsuneHas115Columns) {
  auto t = compute_features(*find_algorithm("A06"), small("P1"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().cols, 115u);  // 23 features x 5 decay rates
}

TEST(FeatureShapes, NprintVariantsDifferAsConfigured) {
  auto all = compute_features(*find_algorithm("A01"), small("P1"));
  auto no_icmp = compute_features(*find_algorithm("A02"), small("P1"));
  auto with_payload = compute_features(*find_algorithm("A03"), small("P1"));
  ASSERT_TRUE(all.ok() && no_icmp.ok() && with_payload.ok());
  // A01: ipv4+tcp+udp+icmp+payload = (20+20+8+8+10)*8 bits.
  EXPECT_EQ(all.value().cols, 528u);
  // A02: tcp+udp+ipv4 = (20+8+20)*8.
  EXPECT_EQ(no_icmp.value().cols, 384u);
  // A03: A02 + 10 payload bytes.
  EXPECT_EQ(with_payload.value().cols, 464u);
}

TEST(FeatureShapes, ConnUnitsMatchConnections) {
  const trace::Dataset& ds = small("F4");
  auto t = compute_features(*find_algorithm("A14"), ds);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().rows, flow::assemble_connections(ds.trace).size());
}

}  // namespace
}  // namespace lumen::core
