// Gateway front-end tests: loopback TCP/UDP ingestion must score
// bit-identically to local trace replay (single-queue and sharded), the
// malformed-frame corpus must be rejected with exact protocol-error
// accounting while later good streams keep working, slow clients must be
// evicted by the low-and-slow defense, per-tenant deploy() must swap
// exactly one tenant's scorer, backpressure must be lossless on the TCP
// path, and the event loop must leak no file descriptors.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "core/ingest.h"
#include "netio/builder.h"
#include "netio/event_loop.h"
#include "netio/frontend.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace lumen {
namespace {

using core::Alert;
using core::FnScorer;
using core::IngestRuntime;
using core::OverflowPolicy;
using netio::FrontendOptions;
using netio::GatewayFrontend;
using netio::SourcePacket;
using netio::Trace;
using netio::TraceReplaySource;
using netio::WireFormat;

// ---------------------------------------------------------------------------
// Helpers

struct ScoreRecord {
  uint32_t index = 0;
  double score = 0.0;
  bool alerted = false;
  bool operator==(const ScoreRecord&) const = default;
};

class Recorder : public core::AlertSink {
 public:
  void on_alert(const Alert& a) override { alerts.push_back(a); }
  void on_packet(const netio::PacketView& v, double s, bool a) override {
    recs.push_back(ScoreRecord{v.index, s, a});
  }
  std::vector<ScoreRecord> recs;
  std::vector<Alert> alerts;
};

// Deterministic scorer with per-instance streaming state (a mod-7 phase
// counter): identical scores require identical per-consumer packet order,
// which is exactly what the socket-vs-replay identity claim is about.
core::ScorerFactory stateful_factory(double threshold) {
  return [threshold](size_t) {
    auto phase = std::make_shared<uint64_t>(0);
    return std::make_unique<FnScorer>(
        [phase](const netio::PacketView& v) {
          const double k = static_cast<double>((*phase)++ % 7);
          return static_cast<double>(v.index % 97) + 0.01 * k;
        },
        threshold);
  };
}

// Stateless variant for UDP, where loopback delivery order is not
// contractual: scores depend only on the packet, so records can be
// compared after sorting by capture index.
core::ScorerFactory stateless_factory(double threshold) {
  return [threshold](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView& v) {
          return static_cast<double>(v.index % 97);
        },
        threshold);
  };
}

void sort_by_index(std::vector<ScoreRecord>& recs) {
  std::sort(recs.begin(), recs.end(),
            [](const ScoreRecord& a, const ScoreRecord& b) {
              return a.index < b.index;
            });
}

std::vector<uint32_t> alert_indices(const std::vector<Alert>& alerts) {
  std::vector<uint32_t> idx;
  idx.reserve(alerts.size());
  for (const Alert& a : alerts) idx.push_back(a.capture_index);
  std::sort(idx.begin(), idx.end());
  return idx;
}

// Replay-path reference run (the pre-redesign pull pipeline).
Recorder replay_run(const Trace& trace, size_t shards,
                    core::ScorerFactory factory) {
  netio::TraceReplaySource src(trace, {});
  IngestRuntime::Options o;
  o.registry = nullptr;
  o.shards = shards;
  Recorder sink;
  IngestRuntime rt(o, std::move(factory), &sink);
  auto st = rt.run(src);
  EXPECT_TRUE(st.ok());
  return sink;
}

// Socket-path run: gateway on an ephemeral loopback port, one client
// thread replaying the trace over TCP.
Recorder socket_run(const Trace& trace, size_t shards,
                    core::ScorerFactory factory, telemetry::Registry* fe_reg) {
  FrontendOptions fo;
  fo.link = trace.link;
  fo.registry = fe_reg;
  telemetry::Registry local;
  if (fo.registry == nullptr) fo.registry = &local;
  GatewayFrontend fe(fo);
  auto bound = fe.bind();
  EXPECT_TRUE(bound.ok());
  std::thread client([&] {
    auto sent = netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), trace, 0);
    EXPECT_TRUE(sent.ok());
  });
  IngestRuntime::Options o;
  o.registry = nullptr;
  o.shards = shards;
  Recorder sink;
  IngestRuntime rt(o, std::move(factory), &sink);
  auto st = rt.run(fe);
  client.join();
  EXPECT_TRUE(st.ok());
  return sink;
}

// Raw loopback client for the malformed-frame corpus and the slow-client
// test (send_trace_tcp only speaks the valid protocol).
int connect_loopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_raw(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

// n synthetic TCP packets, 10 ms apart, alternating between two flows so
// sharded runs exercise more than one shard.
Trace make_trace(size_t n) {
  const netio::MacAddr mac_a{2, 0, 0, 0, 0, 1};
  const netio::MacAddr mac_b{2, 0, 0, 0, 0, 2};
  Trace t;
  for (size_t i = 0; i < n; ++i) {
    netio::TcpOpts tcp;
    tcp.seq = static_cast<uint32_t>(i);
    const uint16_t sport = i % 2 == 0 ? 1234 : 4321;
    t.raw.push_back(netio::RawPacket{
        100.0 + 0.01 * static_cast<double>(i),
        netio::build_tcp(mac_a, mac_b, 0x0a000001, 0x0a000002, sport, 80, tcp,
                         netio::Bytes(i % 7, 0x61))});
  }
  netio::parse_trace(t);
  return t;
}

size_t count_open_fds() {
  size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

// ---------------------------------------------------------------------------
// Identity: socket ingest must reproduce local replay bit for bit.

TEST(FrontendIdentity, TcpMatchesReplayOnBenchmarkCaptures) {
  for (const char* id : {"P1", "P2", "P3", "P4"}) {
    SCOPED_TRACE(id);
    const trace::Dataset ds = trace::make_dataset(id, 0.2);
    const Recorder ref = replay_run(ds.trace, 0, stateful_factory(50.0));
    const Recorder got = socket_run(ds.trace, 0, stateful_factory(50.0),
                                    nullptr);
    ASSERT_EQ(ref.recs.size(), got.recs.size());
    EXPECT_EQ(ref.recs, got.recs);  // scores, order, and alert flags
    EXPECT_EQ(alert_indices(ref.alerts), alert_indices(got.alerts));
  }
}

TEST(FrontendIdentity, TcpMatchesReplaySharded) {
  for (const char* id : {"P1", "P4"}) {
    SCOPED_TRACE(id);
    const trace::Dataset ds = trace::make_dataset(id, 0.2);
    Recorder ref = replay_run(ds.trace, 2, stateful_factory(50.0));
    Recorder got = socket_run(ds.trace, 2, stateful_factory(50.0), nullptr);
    ASSERT_EQ(ref.recs.size(), got.recs.size());
    // Two consumers interleave sink delivery; the per-packet scores are
    // still deterministic because the flow partition (and therefore each
    // consumer's packet order) is identical in both runs.
    sort_by_index(ref.recs);
    sort_by_index(got.recs);
    EXPECT_EQ(ref.recs, got.recs);
    EXPECT_EQ(alert_indices(ref.alerts), alert_indices(got.alerts));
  }
}

TEST(FrontendIdentity, UdpMatchesReplay) {
  const trace::Dataset ds = trace::make_dataset("P1", 0.2);
  Recorder ref = replay_run(ds.trace, 0, stateless_factory(50.0));

  FrontendOptions fo;
  fo.link = ds.trace.link;
  fo.tcp = false;
  fo.udp = true;
  fo.udp_rcvbuf = 8 << 20;
  telemetry::Registry reg;
  fo.registry = &reg;
  GatewayFrontend fe(fo);
  ASSERT_TRUE(fe.bind().ok());
  std::thread client([&] {
    // Paced sender + large receive buffer: loopback UDP must not shed.
    auto sent = netio::send_trace_udp("127.0.0.1", fe.udp_port(), ds.trace, 0,
                                      0, SIZE_MAX, /*pace_every=*/64,
                                      /*pace_us=*/500);
    EXPECT_TRUE(sent.ok());
  });
  IngestRuntime::Options o;
  o.registry = nullptr;
  o.queue_capacity = 1 << 16;
  Recorder sink;
  IngestRuntime rt(o, stateless_factory(50.0), &sink);
  auto st = rt.run(fe);
  client.join();
  ASSERT_TRUE(st.ok());

  ASSERT_EQ(ref.recs.size(), sink.recs.size());
  sort_by_index(ref.recs);
  sort_by_index(sink.recs);
  EXPECT_EQ(ref.recs, sink.recs);
  EXPECT_EQ(alert_indices(ref.alerts), alert_indices(sink.alerts));
  EXPECT_EQ(0u, reg.snapshot().counter_value("frontend.shed"));
}

// ---------------------------------------------------------------------------
// Malformed-frame corpus

TEST(FrontendProtocol, MalformedStreamsRejectedGoodStreamSurvives) {
  const Trace trace = make_trace(3);
  FrontendOptions fo;
  fo.link = trace.link;
  fo.min_streams = 1;  // the one good stream
  telemetry::Registry reg;
  fo.registry = &reg;
  GatewayFrontend fe(fo);
  ASSERT_TRUE(fe.bind().ok());
  const uint16_t port = fe.tcp_port();

  std::thread client([&] {
    // 1. Bad magic in the hello.
    {
      const int fd = connect_loopback(port);
      ASSERT_GE(fd, 0);
      std::vector<uint8_t> bad(WireFormat::kHelloBytes, 0xEE);
      send_raw(fd, bad);
      ::close(fd);
    }
    // 2. Oversized frame: incl_len beyond max_frame_bytes.
    {
      const int fd = connect_loopback(port);
      ASSERT_GE(fd, 0);
      std::vector<uint8_t> buf;
      netio::append_hello(buf, 0, trace.link);
      netio::append_record(buf, trace.raw[0], 0);
      // Patch incl_len (record offset 20) to a huge value.
      const size_t rec = WireFormat::kHelloBytes;
      buf[rec + 20] = 0xFF;
      buf[rec + 21] = 0xFF;
      buf[rec + 22] = 0xFF;
      buf[rec + 23] = 0x0F;
      send_raw(fd, buf);
      ::close(fd);
    }
    // 3. Mid-record disconnect: valid hello, then half a record header.
    {
      const int fd = connect_loopback(port);
      ASSERT_GE(fd, 0);
      std::vector<uint8_t> buf;
      netio::append_hello(buf, 0, trace.link);
      std::vector<uint8_t> rec;
      netio::append_record(rec, trace.raw[0], 0);
      buf.insert(buf.end(), rec.begin(), rec.begin() + 9);  // truncated
      send_raw(fd, buf);
      ::close(fd);
    }
    // 4. A good stream afterwards must still ingest cleanly. Give the
    // gateway a beat to process the malformed connections first so the
    // drain goal (1 good stream) cannot outrun their accepts.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    auto sent = netio::send_trace_tcp("127.0.0.1", port, trace, 0);
    EXPECT_TRUE(sent.ok());
  });

  IngestRuntime::Options o;
  o.registry = nullptr;
  Recorder sink;
  IngestRuntime rt(o, stateless_factory(1e9), &sink);
  auto st = rt.run(fe);
  client.join();
  ASSERT_TRUE(st.ok());

  EXPECT_EQ(trace.raw.size(), sink.recs.size());
  EXPECT_EQ(3u, reg.snapshot().counter_value("frontend.protocol_errors"));
  // The façade invariant must span the socket path.
  const core::IngestStats stats = rt.stats();
  EXPECT_EQ(stats.enqueued - stats.dropped, stats.scored + stats.parse_skipped);

  size_t protocol_closes = 0;
  for (const netio::ConnReport& r : fe.connections()) {
    if (r.close_reason == netio::CloseReason::kProtocolError)
      ++protocol_closes;
  }
  EXPECT_EQ(3u, protocol_closes);
}

// ---------------------------------------------------------------------------
// Slow-client defense

TEST(FrontendTimeout, SlowClientEvicted) {
  const Trace trace = make_trace(4);
  FrontendOptions fo;
  fo.link = trace.link;
  fo.min_streams = 1;
  fo.loop.idle_timeout = 0.5;
  fo.loop.min_bytes_per_sec = 64 * 1024;  // far above a dribbling client
  fo.loop.rate_window = 0.2;
  fo.drain_grace = 5.0;
  telemetry::Registry reg;
  fo.registry = &reg;
  GatewayFrontend fe(fo);
  ASSERT_TRUE(fe.bind().ok());
  const uint16_t port = fe.tcp_port();

  std::atomic<bool> slow_done{false};
  std::thread slow([&] {
    const int fd = connect_loopback(port);
    if (fd < 0) {
      slow_done = true;
      return;
    }
    std::vector<uint8_t> hello;
    netio::append_hello(hello, 0, trace.link);
    send_raw(fd, hello);
    // Dribble one byte every 80 ms: alive, but far below the rate floor.
    const uint8_t byte = 0;
    for (int i = 0; i < 40; ++i) {
      if (::send(fd, &byte, 1, MSG_NOSIGNAL) <= 0) break;  // evicted
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
    ::close(fd);
    slow_done = true;
  });
  std::thread good([&] {
    // Give the slow client a head start so its eviction happens mid-run.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto sent = netio::send_trace_tcp("127.0.0.1", port, trace, 0);
    EXPECT_TRUE(sent.ok());
  });

  IngestRuntime::Options o;
  o.registry = nullptr;
  Recorder sink;
  IngestRuntime rt(o, stateless_factory(1e9), &sink);
  auto st = rt.run(fe);
  good.join();
  slow.join();
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(slow_done.load());
  EXPECT_EQ(trace.raw.size(), sink.recs.size());

  const telemetry::Snapshot snap = reg.snapshot();
  const uint64_t evicted = snap.counter_value("frontend.conn.slow_closed") +
                           snap.counter_value("frontend.conn.idle_closed");
  EXPECT_GE(evicted, 1u);
  bool saw_eviction = false;
  for (const netio::ConnReport& r : fe.connections()) {
    if (r.close_reason == netio::CloseReason::kSlowClient ||
        r.close_reason == netio::CloseReason::kIdleTimeout)
      saw_eviction = true;
  }
  EXPECT_TRUE(saw_eviction);
}

// ---------------------------------------------------------------------------
// Per-tenant routing and hot swap

TEST(FrontendTenants, DeploySwapsExactlyOneTenant) {
  const Trace trace = make_trace(60);
  const size_t half = trace.raw.size() / 2;

  telemetry::Registry rt_reg;
  IngestRuntime::Options o;
  o.registry = &rt_reg;
  Recorder sink;
  IngestRuntime rt(o, stateless_factory(1e9), &sink);
  const auto never_alerts = stateless_factory(1e9);
  // Post-swap factory: every packet alerts.
  const auto always_alerts = stateless_factory(-1.0);
  ASSERT_TRUE(rt.register_tenant(1, never_alerts));
  ASSERT_TRUE(rt.register_tenant(2, never_alerts));
  EXPECT_FALSE(rt.register_tenant(2, never_alerts));  // duplicate
  EXPECT_FALSE(rt.register_tenant(0, never_alerts));  // default slot

  FrontendOptions fo;
  fo.link = trace.link;
  fo.min_streams = 2;
  telemetry::Registry fe_reg;
  fo.registry = &fe_reg;
  GatewayFrontend fe(fo);
  ASSERT_TRUE(fe.bind().ok());
  const uint16_t port = fe.tcp_port();

  std::atomic<bool> resume_tenant2{false};
  std::thread tenant1([&] {
    auto sent = netio::send_trace_tcp("127.0.0.1", port, trace, 1);
    EXPECT_TRUE(sent.ok());
  });
  std::thread tenant2([&] {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf;
    netio::append_hello(buf, 2, trace.link);
    for (size_t i = 0; i < half; ++i) {
      netio::append_record(buf, trace.raw[i],
                           static_cast<uint32_t>(trace.view[i].index));
    }
    ASSERT_TRUE(send_raw(fd, buf));
    while (!resume_tenant2.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    buf.clear();
    for (size_t i = half; i < trace.raw.size(); ++i) {
      netio::append_record(buf, trace.raw[i],
                           static_cast<uint32_t>(trace.view[i].index));
    }
    netio::append_fin(buf);
    ASSERT_TRUE(send_raw(fd, buf));
    ::close(fd);
  });
  std::thread runner([&] {
    auto st = rt.run(fe);
    EXPECT_TRUE(st.ok());
  });

  // Wait until tenant 2's first half has been scored under the original
  // (never-alerting) scorer, swap that tenant alone, then release the
  // second half.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt_reg.snapshot().counter_value("ingest.tenant2.scored") < half) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(rt.deploy(2, always_alerts));
  EXPECT_FALSE(rt.deploy(7, always_alerts));  // never registered
  resume_tenant2 = true;

  tenant1.join();
  tenant2.join();
  runner.join();

  // Exactly tenant 2's second half alerted; tenant 1 was untouched.
  ASSERT_EQ(trace.raw.size() - half, sink.alerts.size());
  for (const Alert& a : sink.alerts) {
    EXPECT_EQ(2u, a.tenant);
    EXPECT_GE(a.capture_index, half);
  }
  const telemetry::Snapshot snap = rt_reg.snapshot();
  EXPECT_EQ(trace.raw.size(), snap.counter_value("ingest.tenant1.scored"));
  EXPECT_EQ(trace.raw.size(), snap.counter_value("ingest.tenant2.scored"));
  EXPECT_EQ(0u, snap.counter_value("ingest.tenant1.alerted"));
  EXPECT_EQ(trace.raw.size() - half,
            snap.counter_value("ingest.tenant2.alerted"));
  EXPECT_EQ(1u, snap.counter_value("ingest.tenant2.swaps_applied"));
  EXPECT_EQ(0u, snap.counter_value("ingest.tenant1.swaps_applied"));
}

// ---------------------------------------------------------------------------
// Backpressure

TEST(FrontendBackpressure, TcpPauseIsLossless) {
  const Trace trace = make_trace(3000);
  // Tiny queue + per-packet claims force sustained kBusy at the feed: the
  // gateway must stage, pause the socket, and deliver every frame anyway.
  IngestRuntime::Options o;
  o.registry = nullptr;
  o.queue_capacity = 8;
  o.consumer_batch = 1;
  Recorder sink;
  IngestRuntime rt(o, stateful_factory(50.0), &sink);

  FrontendOptions fo;
  fo.link = trace.link;
  fo.pending_frames = 64;
  fo.loop.poll_interval_ms = 1;
  telemetry::Registry reg;
  fo.registry = &reg;
  GatewayFrontend fe(fo);
  ASSERT_TRUE(fe.bind().ok());
  std::thread client([&] {
    auto sent = netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), trace, 0);
    EXPECT_TRUE(sent.ok());
  });
  auto st = rt.run(fe);
  client.join();
  ASSERT_TRUE(st.ok());

  ASSERT_EQ(trace.raw.size(), sink.recs.size());
  Recorder ref = replay_run(trace, 0, stateful_factory(50.0));
  EXPECT_EQ(ref.recs, sink.recs);
  EXPECT_EQ(0u, reg.snapshot().counter_value("frontend.shed"));
}

TEST(FrontendBackpressure, ShedModeAccountsEveryFrame) {
  const Trace trace = make_trace(2000);
  IngestRuntime::Options o;
  o.registry = nullptr;
  o.queue_capacity = 4;
  o.consumer_batch = 1;
  Recorder sink;
  // A deliberately slow scorer so the feed saturates.
  auto slow_factory = [](size_t) {
    return std::make_unique<FnScorer>(
        [](const netio::PacketView& v) {
          std::this_thread::sleep_for(std::chrono::microseconds(20));
          return static_cast<double>(v.index % 97);
        },
        1e9);
  };
  IngestRuntime rt(o, slow_factory, &sink);

  FrontendOptions fo;
  fo.link = trace.link;
  fo.pending_frames = 8;
  fo.shed_when_saturated = true;
  fo.loop.poll_interval_ms = 1;
  telemetry::Registry reg;
  fo.registry = &reg;
  GatewayFrontend fe(fo);
  ASSERT_TRUE(fe.bind().ok());
  std::thread client([&] {
    auto sent = netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), trace, 0);
    EXPECT_TRUE(sent.ok());
  });
  auto st = rt.run(fe);
  client.join();
  ASSERT_TRUE(st.ok());

  // Exact per-connection accounting: every frame the wire carried is
  // either scored or counted shed, and the runtime's conservation
  // invariant spans the socket path.
  uint64_t frames = 0, shed = 0;
  for (const netio::ConnReport& r : fe.connections()) {
    frames += r.frames;
    shed += r.shed;
  }
  EXPECT_EQ(trace.raw.size(), frames);
  EXPECT_EQ(shed, reg.snapshot().counter_value("frontend.shed"));
  const core::IngestStats stats = rt.stats();
  EXPECT_EQ(trace.raw.size(), stats.enqueued);
  EXPECT_EQ(shed, stats.dropped);
  EXPECT_EQ(stats.enqueued - stats.dropped,
            stats.scored + stats.parse_skipped);
  EXPECT_EQ(trace.raw.size() - shed, sink.recs.size());
}

// ---------------------------------------------------------------------------
// Resource hygiene

TEST(FrontendHygiene, NoLeakedFileDescriptors) {
  const Trace trace = make_trace(50);
  // Warm-up run absorbs lazily-created process-wide fds.
  socket_run(trace, 0, stateless_factory(1e9), nullptr);
  const size_t before = count_open_fds();
  for (int i = 0; i < 3; ++i) {
    socket_run(trace, 0, stateless_factory(1e9), nullptr);
  }
  EXPECT_EQ(before, count_open_fds());
}

// ---------------------------------------------------------------------------
// Overflow policy: explicit kDropNewest, no silent degradation

TEST(OverflowPolicyTest, DropNewestKeepsOldest) {
  core::BoundedPacketQueue q(2, OverflowPolicy::kDropNewest);
  SourcePacket a, b, c;
  a.capture_index = 1;
  b.capture_index = 2;
  c.capture_index = 3;
  EXPECT_EQ(netio::FeedStatus::kAccepted, q.offer(std::move(a)));
  EXPECT_EQ(netio::FeedStatus::kAccepted, q.offer(std::move(b)));
  EXPECT_EQ(netio::FeedStatus::kShed, q.offer(std::move(c)));
  std::vector<SourcePacket> out;
  q.close();
  EXPECT_EQ(2u, q.pop_batch(out, 8));
  EXPECT_EQ(1u, out[0].capture_index);
  EXPECT_EQ(2u, out[1].capture_index);
  EXPECT_EQ(1u, q.dropped());
}

TEST(OverflowPolicyTest, DropOldestEvictsHead) {
  core::BoundedPacketQueue q(2, OverflowPolicy::kDropOldest);
  SourcePacket a, b, c;
  a.capture_index = 1;
  b.capture_index = 2;
  c.capture_index = 3;
  EXPECT_EQ(netio::FeedStatus::kAccepted, q.offer(std::move(a)));
  EXPECT_EQ(netio::FeedStatus::kAccepted, q.offer(std::move(b)));
  EXPECT_EQ(netio::FeedStatus::kShed, q.offer(std::move(c)));
  std::vector<SourcePacket> out;
  q.close();
  EXPECT_EQ(2u, q.pop_batch(out, 8));
  EXPECT_EQ(2u, out[0].capture_index);
  EXPECT_EQ(3u, out[1].capture_index);
  EXPECT_EQ(1u, q.dropped());
}

TEST(OverflowPolicyTest, ShardedDropOldestNormalizedWithDiagnostic) {
  IngestRuntime::Options o;
  o.shards = 2;
  o.overflow = OverflowPolicy::kDropOldest;
  std::string diag;
  const auto n = IngestRuntime::Options::normalized(o, &diag);
  EXPECT_EQ(OverflowPolicy::kDropNewest, n.overflow);
  EXPECT_NE(std::string::npos, diag.find("overflow"));

  // Single-queue mode keeps kDropOldest untouched.
  IngestRuntime::Options sq;
  sq.overflow = OverflowPolicy::kDropOldest;
  std::string diag2;
  EXPECT_EQ(OverflowPolicy::kDropOldest,
            IngestRuntime::Options::normalized(sq, &diag2).overflow);
  EXPECT_EQ("", diag2);

  // Construction bumps the policy_degraded counter exactly once.
  telemetry::Registry reg;
  o.registry = &reg;
  IngestRuntime rt(o, stateless_factory(1e9), nullptr);
  EXPECT_EQ(1u, reg.snapshot().counter_value("ingest.policy_degraded"));

  EXPECT_STREQ("kDropOldest",
               core::overflow_policy_name(OverflowPolicy::kDropOldest));
  EXPECT_STREQ("kDropNewest",
               core::overflow_policy_name(OverflowPolicy::kDropNewest));
  EXPECT_STREQ("kBlock", core::overflow_policy_name(OverflowPolicy::kBlock));
}

}  // namespace
}  // namespace lumen
