# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list_algorithms "/root/repo/build/tools/lumen" "list-algorithms")
set_tests_properties(cli_list_algorithms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list_datasets "/root/repo/build/tools/lumen" "list-datasets")
set_tests_properties(cli_list_datasets PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list_ops "/root/repo/build/tools/lumen" "list-ops")
set_tests_properties(cli_list_ops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate "/root/repo/build/tools/lumen" "evaluate" "--algo" "A14" "--dataset" "F4" "--scale" "0.15")
set_tests_properties(cli_evaluate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explain "/root/repo/build/tools/lumen" "explain" "--algo" "A10" "--dataset" "F1" "--scale" "0.15")
set_tests_properties(cli_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/lumen" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
