# Empty dependencies file for lumen.
# This may be replaced when dependencies are built.
