file(REMOVE_RECURSE
  "CMakeFiles/lumen.dir/lumen_cli.cpp.o"
  "CMakeFiles/lumen.dir/lumen_cli.cpp.o.d"
  "lumen"
  "lumen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
