# Empty dependencies file for fig6_improved_heatmap.
# This may be replaced when dependencies are built.
