# Empty dependencies file for relevance_report.
# This may be replaced when dependencies are built.
