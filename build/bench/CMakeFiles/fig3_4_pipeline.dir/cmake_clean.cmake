file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_pipeline.dir/fig3_4_pipeline.cpp.o"
  "CMakeFiles/fig3_4_pipeline.dir/fig3_4_pipeline.cpp.o.d"
  "fig3_4_pipeline"
  "fig3_4_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
