# Empty dependencies file for fig3_4_pipeline.
# This may be replaced when dependencies are built.
