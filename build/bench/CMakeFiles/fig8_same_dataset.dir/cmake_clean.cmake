file(REMOVE_RECURSE
  "CMakeFiles/fig8_same_dataset.dir/fig8_same_dataset.cpp.o"
  "CMakeFiles/fig8_same_dataset.dir/fig8_same_dataset.cpp.o.d"
  "fig8_same_dataset"
  "fig8_same_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_same_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
