# Empty compiler generated dependencies file for fig8_same_dataset.
# This may be replaced when dependencies are built.
