# Empty dependencies file for validation_52.
# This may be replaced when dependencies are built.
