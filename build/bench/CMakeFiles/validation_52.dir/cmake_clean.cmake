file(REMOVE_RECURSE
  "CMakeFiles/validation_52.dir/validation_52.cpp.o"
  "CMakeFiles/validation_52.dir/validation_52.cpp.o.d"
  "validation_52"
  "validation_52.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_52.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
