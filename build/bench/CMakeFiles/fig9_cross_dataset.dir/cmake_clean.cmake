file(REMOVE_RECURSE
  "CMakeFiles/fig9_cross_dataset.dir/fig9_cross_dataset.cpp.o"
  "CMakeFiles/fig9_cross_dataset.dir/fig9_cross_dataset.cpp.o.d"
  "fig9_cross_dataset"
  "fig9_cross_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cross_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
