# Empty dependencies file for fig9_cross_dataset.
# This may be replaced when dependencies are built.
