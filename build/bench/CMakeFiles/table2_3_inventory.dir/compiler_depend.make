# Empty compiler generated dependencies file for table2_3_inventory.
# This may be replaced when dependencies are built.
