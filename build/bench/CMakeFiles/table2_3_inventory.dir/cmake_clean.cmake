file(REMOVE_RECURSE
  "CMakeFiles/table2_3_inventory.dir/table2_3_inventory.cpp.o"
  "CMakeFiles/table2_3_inventory.dir/table2_3_inventory.cpp.o.d"
  "table2_3_inventory"
  "table2_3_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_3_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
