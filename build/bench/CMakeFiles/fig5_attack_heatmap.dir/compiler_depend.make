# Empty compiler generated dependencies file for fig5_attack_heatmap.
# This may be replaced when dependencies are built.
