file(REMOVE_RECURSE
  "CMakeFiles/fig5_attack_heatmap.dir/fig5_attack_heatmap.cpp.o"
  "CMakeFiles/fig5_attack_heatmap.dir/fig5_attack_heatmap.cpp.o.d"
  "fig5_attack_heatmap"
  "fig5_attack_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_attack_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
