file(REMOVE_RECURSE
  "CMakeFiles/fig1_literature.dir/fig1_literature.cpp.o"
  "CMakeFiles/fig1_literature.dir/fig1_literature.cpp.o.d"
  "fig1_literature"
  "fig1_literature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_literature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
