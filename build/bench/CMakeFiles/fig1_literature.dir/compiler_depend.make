# Empty compiler generated dependencies file for fig1_literature.
# This may be replaced when dependencies are built.
