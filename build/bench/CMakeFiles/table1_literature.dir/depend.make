# Empty dependencies file for table1_literature.
# This may be replaced when dependencies are built.
