file(REMOVE_RECURSE
  "CMakeFiles/table1_literature.dir/table1_literature.cpp.o"
  "CMakeFiles/table1_literature.dir/table1_literature.cpp.o.d"
  "table1_literature"
  "table1_literature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_literature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
