file(REMOVE_RECURSE
  "CMakeFiles/fig10_train_test_matrix.dir/fig10_train_test_matrix.cpp.o"
  "CMakeFiles/fig10_train_test_matrix.dir/fig10_train_test_matrix.cpp.o.d"
  "fig10_train_test_matrix"
  "fig10_train_test_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_train_test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
