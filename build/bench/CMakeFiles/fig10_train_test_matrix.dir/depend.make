# Empty dependencies file for fig10_train_test_matrix.
# This may be replaced when dependencies are built.
