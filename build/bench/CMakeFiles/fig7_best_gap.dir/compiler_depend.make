# Empty compiler generated dependencies file for fig7_best_gap.
# This may be replaced when dependencies are built.
