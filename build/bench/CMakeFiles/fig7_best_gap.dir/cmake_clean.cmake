file(REMOVE_RECURSE
  "CMakeFiles/fig7_best_gap.dir/fig7_best_gap.cpp.o"
  "CMakeFiles/fig7_best_gap.dir/fig7_best_gap.cpp.o.d"
  "fig7_best_gap"
  "fig7_best_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_best_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
