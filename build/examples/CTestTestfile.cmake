# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "F4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_detector "/root/repo/build/examples/custom_detector")
set_tests_properties(example_custom_detector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_operator_playbook "/root/repo/build/examples/operator_playbook")
set_tests_properties(example_operator_playbook PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_detection "/root/repo/build/examples/live_detection")
set_tests_properties(example_live_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_device_classification "/root/repo/build/examples/device_classification")
set_tests_properties(example_device_classification PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_train_and_deploy "/root/repo/build/examples/train_and_deploy")
set_tests_properties(example_train_and_deploy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
