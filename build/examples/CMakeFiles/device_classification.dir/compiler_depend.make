# Empty compiler generated dependencies file for device_classification.
# This may be replaced when dependencies are built.
