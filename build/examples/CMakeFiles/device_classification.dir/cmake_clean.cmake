file(REMOVE_RECURSE
  "CMakeFiles/device_classification.dir/device_classification.cpp.o"
  "CMakeFiles/device_classification.dir/device_classification.cpp.o.d"
  "device_classification"
  "device_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
