file(REMOVE_RECURSE
  "CMakeFiles/operator_playbook.dir/operator_playbook.cpp.o"
  "CMakeFiles/operator_playbook.dir/operator_playbook.cpp.o.d"
  "operator_playbook"
  "operator_playbook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_playbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
