
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pcap_test.cpp" "tests/CMakeFiles/pcap_test.dir/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/pcap_test.dir/pcap_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/lumen_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lumen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lumen_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/lumen_features.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lumen_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lumen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/netio/CMakeFiles/lumen_netio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
