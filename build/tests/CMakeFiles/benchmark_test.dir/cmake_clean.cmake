file(REMOVE_RECURSE
  "CMakeFiles/benchmark_test.dir/benchmark_test.cpp.o"
  "CMakeFiles/benchmark_test.dir/benchmark_test.cpp.o.d"
  "benchmark_test"
  "benchmark_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
