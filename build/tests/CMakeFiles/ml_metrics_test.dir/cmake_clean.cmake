file(REMOVE_RECURSE
  "CMakeFiles/ml_metrics_test.dir/ml_metrics_test.cpp.o"
  "CMakeFiles/ml_metrics_test.dir/ml_metrics_test.cpp.o.d"
  "ml_metrics_test"
  "ml_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
