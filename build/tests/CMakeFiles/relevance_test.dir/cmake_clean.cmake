file(REMOVE_RECURSE
  "CMakeFiles/relevance_test.dir/relevance_test.cpp.o"
  "CMakeFiles/relevance_test.dir/relevance_test.cpp.o.d"
  "relevance_test"
  "relevance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relevance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
