# Empty dependencies file for ml_supervised_test.
# This may be replaced when dependencies are built.
