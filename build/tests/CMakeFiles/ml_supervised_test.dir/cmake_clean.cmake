file(REMOVE_RECURSE
  "CMakeFiles/ml_supervised_test.dir/ml_supervised_test.cpp.o"
  "CMakeFiles/ml_supervised_test.dir/ml_supervised_test.cpp.o.d"
  "ml_supervised_test"
  "ml_supervised_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_supervised_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
