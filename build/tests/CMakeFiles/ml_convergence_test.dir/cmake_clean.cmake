file(REMOVE_RECURSE
  "CMakeFiles/ml_convergence_test.dir/ml_convergence_test.cpp.o"
  "CMakeFiles/ml_convergence_test.dir/ml_convergence_test.cpp.o.d"
  "ml_convergence_test"
  "ml_convergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
