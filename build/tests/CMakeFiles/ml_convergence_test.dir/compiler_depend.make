# Empty compiler generated dependencies file for ml_convergence_test.
# This may be replaced when dependencies are built.
