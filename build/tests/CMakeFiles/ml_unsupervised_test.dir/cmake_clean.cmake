file(REMOVE_RECURSE
  "CMakeFiles/ml_unsupervised_test.dir/ml_unsupervised_test.cpp.o"
  "CMakeFiles/ml_unsupervised_test.dir/ml_unsupervised_test.cpp.o.d"
  "ml_unsupervised_test"
  "ml_unsupervised_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_unsupervised_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
