# Empty dependencies file for ml_unsupervised_test.
# This may be replaced when dependencies are built.
