# Empty dependencies file for lumen_eval.
# This may be replaced when dependencies are built.
