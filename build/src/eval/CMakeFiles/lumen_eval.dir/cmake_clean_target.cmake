file(REMOVE_RECURSE
  "liblumen_eval.a"
)
