file(REMOVE_RECURSE
  "CMakeFiles/lumen_eval.dir/benchmark.cpp.o"
  "CMakeFiles/lumen_eval.dir/benchmark.cpp.o.d"
  "CMakeFiles/lumen_eval.dir/literature.cpp.o"
  "CMakeFiles/lumen_eval.dir/literature.cpp.o.d"
  "CMakeFiles/lumen_eval.dir/relevance.cpp.o"
  "CMakeFiles/lumen_eval.dir/relevance.cpp.o.d"
  "CMakeFiles/lumen_eval.dir/report.cpp.o"
  "CMakeFiles/lumen_eval.dir/report.cpp.o.d"
  "CMakeFiles/lumen_eval.dir/results.cpp.o"
  "CMakeFiles/lumen_eval.dir/results.cpp.o.d"
  "CMakeFiles/lumen_eval.dir/synthesis.cpp.o"
  "CMakeFiles/lumen_eval.dir/synthesis.cpp.o.d"
  "liblumen_eval.a"
  "liblumen_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
