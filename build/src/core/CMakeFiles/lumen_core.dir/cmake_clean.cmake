file(REMOVE_RECURSE
  "CMakeFiles/lumen_core.dir/algorithms.cpp.o"
  "CMakeFiles/lumen_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/lumen_core.dir/engine.cpp.o"
  "CMakeFiles/lumen_core.dir/engine.cpp.o.d"
  "CMakeFiles/lumen_core.dir/json.cpp.o"
  "CMakeFiles/lumen_core.dir/json.cpp.o.d"
  "CMakeFiles/lumen_core.dir/kitsune_extractor.cpp.o"
  "CMakeFiles/lumen_core.dir/kitsune_extractor.cpp.o.d"
  "CMakeFiles/lumen_core.dir/op.cpp.o"
  "CMakeFiles/lumen_core.dir/op.cpp.o.d"
  "CMakeFiles/lumen_core.dir/ops_common.cpp.o"
  "CMakeFiles/lumen_core.dir/ops_common.cpp.o.d"
  "CMakeFiles/lumen_core.dir/ops_flow.cpp.o"
  "CMakeFiles/lumen_core.dir/ops_flow.cpp.o.d"
  "CMakeFiles/lumen_core.dir/ops_io.cpp.o"
  "CMakeFiles/lumen_core.dir/ops_io.cpp.o.d"
  "CMakeFiles/lumen_core.dir/ops_model.cpp.o"
  "CMakeFiles/lumen_core.dir/ops_model.cpp.o.d"
  "CMakeFiles/lumen_core.dir/ops_packet.cpp.o"
  "CMakeFiles/lumen_core.dir/ops_packet.cpp.o.d"
  "CMakeFiles/lumen_core.dir/ops_table.cpp.o"
  "CMakeFiles/lumen_core.dir/ops_table.cpp.o.d"
  "CMakeFiles/lumen_core.dir/pipeline.cpp.o"
  "CMakeFiles/lumen_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/lumen_core.dir/stream.cpp.o"
  "CMakeFiles/lumen_core.dir/stream.cpp.o.d"
  "CMakeFiles/lumen_core.dir/value.cpp.o"
  "CMakeFiles/lumen_core.dir/value.cpp.o.d"
  "liblumen_core.a"
  "liblumen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
