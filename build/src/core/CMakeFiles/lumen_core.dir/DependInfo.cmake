
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/lumen_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/lumen_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/json.cpp" "src/core/CMakeFiles/lumen_core.dir/json.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/json.cpp.o.d"
  "/root/repo/src/core/kitsune_extractor.cpp" "src/core/CMakeFiles/lumen_core.dir/kitsune_extractor.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/kitsune_extractor.cpp.o.d"
  "/root/repo/src/core/op.cpp" "src/core/CMakeFiles/lumen_core.dir/op.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/op.cpp.o.d"
  "/root/repo/src/core/ops_common.cpp" "src/core/CMakeFiles/lumen_core.dir/ops_common.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/ops_common.cpp.o.d"
  "/root/repo/src/core/ops_flow.cpp" "src/core/CMakeFiles/lumen_core.dir/ops_flow.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/ops_flow.cpp.o.d"
  "/root/repo/src/core/ops_io.cpp" "src/core/CMakeFiles/lumen_core.dir/ops_io.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/ops_io.cpp.o.d"
  "/root/repo/src/core/ops_model.cpp" "src/core/CMakeFiles/lumen_core.dir/ops_model.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/ops_model.cpp.o.d"
  "/root/repo/src/core/ops_packet.cpp" "src/core/CMakeFiles/lumen_core.dir/ops_packet.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/ops_packet.cpp.o.d"
  "/root/repo/src/core/ops_table.cpp" "src/core/CMakeFiles/lumen_core.dir/ops_table.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/ops_table.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/lumen_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/stream.cpp" "src/core/CMakeFiles/lumen_core.dir/stream.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/stream.cpp.o.d"
  "/root/repo/src/core/value.cpp" "src/core/CMakeFiles/lumen_core.dir/value.cpp.o" "gcc" "src/core/CMakeFiles/lumen_core.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netio/CMakeFiles/lumen_netio.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/lumen_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lumen_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lumen_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lumen_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
