file(REMOVE_RECURSE
  "liblumen_core.a"
)
