file(REMOVE_RECURSE
  "liblumen_features.a"
)
