# Empty compiler generated dependencies file for lumen_features.
# This may be replaced when dependencies are built.
