file(REMOVE_RECURSE
  "CMakeFiles/lumen_features.dir/csv.cpp.o"
  "CMakeFiles/lumen_features.dir/csv.cpp.o.d"
  "CMakeFiles/lumen_features.dir/stats.cpp.o"
  "CMakeFiles/lumen_features.dir/stats.cpp.o.d"
  "CMakeFiles/lumen_features.dir/transform.cpp.o"
  "CMakeFiles/lumen_features.dir/transform.cpp.o.d"
  "liblumen_features.a"
  "liblumen_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
