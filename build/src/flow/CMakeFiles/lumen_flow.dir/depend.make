# Empty dependencies file for lumen_flow.
# This may be replaced when dependencies are built.
