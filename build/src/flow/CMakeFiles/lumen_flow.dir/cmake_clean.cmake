file(REMOVE_RECURSE
  "CMakeFiles/lumen_flow.dir/flow.cpp.o"
  "CMakeFiles/lumen_flow.dir/flow.cpp.o.d"
  "liblumen_flow.a"
  "liblumen_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
