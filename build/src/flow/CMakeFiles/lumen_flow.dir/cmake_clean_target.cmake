file(REMOVE_RECURSE
  "liblumen_flow.a"
)
