file(REMOVE_RECURSE
  "liblumen_ml.a"
)
