file(REMOVE_RECURSE
  "CMakeFiles/lumen_ml.dir/automl.cpp.o"
  "CMakeFiles/lumen_ml.dir/automl.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/bayes.cpp.o"
  "CMakeFiles/lumen_ml.dir/bayes.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/eigen.cpp.o"
  "CMakeFiles/lumen_ml.dir/eigen.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/forest.cpp.o"
  "CMakeFiles/lumen_ml.dir/forest.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/gmm.cpp.o"
  "CMakeFiles/lumen_ml.dir/gmm.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/kernel.cpp.o"
  "CMakeFiles/lumen_ml.dir/kernel.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/kitnet.cpp.o"
  "CMakeFiles/lumen_ml.dir/kitnet.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/knn.cpp.o"
  "CMakeFiles/lumen_ml.dir/knn.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/linear.cpp.o"
  "CMakeFiles/lumen_ml.dir/linear.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/metrics.cpp.o"
  "CMakeFiles/lumen_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/mlp.cpp.o"
  "CMakeFiles/lumen_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/model.cpp.o"
  "CMakeFiles/lumen_ml.dir/model.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/persist.cpp.o"
  "CMakeFiles/lumen_ml.dir/persist.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/tree.cpp.o"
  "CMakeFiles/lumen_ml.dir/tree.cpp.o.d"
  "CMakeFiles/lumen_ml.dir/tuning.cpp.o"
  "CMakeFiles/lumen_ml.dir/tuning.cpp.o.d"
  "liblumen_ml.a"
  "liblumen_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
