# Empty dependencies file for lumen_ml.
# This may be replaced when dependencies are built.
