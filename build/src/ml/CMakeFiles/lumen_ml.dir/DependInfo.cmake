
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/automl.cpp" "src/ml/CMakeFiles/lumen_ml.dir/automl.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/automl.cpp.o.d"
  "/root/repo/src/ml/bayes.cpp" "src/ml/CMakeFiles/lumen_ml.dir/bayes.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/bayes.cpp.o.d"
  "/root/repo/src/ml/eigen.cpp" "src/ml/CMakeFiles/lumen_ml.dir/eigen.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/eigen.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/lumen_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/gmm.cpp" "src/ml/CMakeFiles/lumen_ml.dir/gmm.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/gmm.cpp.o.d"
  "/root/repo/src/ml/kernel.cpp" "src/ml/CMakeFiles/lumen_ml.dir/kernel.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/kernel.cpp.o.d"
  "/root/repo/src/ml/kitnet.cpp" "src/ml/CMakeFiles/lumen_ml.dir/kitnet.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/kitnet.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/lumen_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/lumen_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/lumen_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/lumen_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/ml/CMakeFiles/lumen_ml.dir/model.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/model.cpp.o.d"
  "/root/repo/src/ml/persist.cpp" "src/ml/CMakeFiles/lumen_ml.dir/persist.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/persist.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/lumen_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/tree.cpp.o.d"
  "/root/repo/src/ml/tuning.cpp" "src/ml/CMakeFiles/lumen_ml.dir/tuning.cpp.o" "gcc" "src/ml/CMakeFiles/lumen_ml.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/lumen_features.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
