
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netio/builder.cpp" "src/netio/CMakeFiles/lumen_netio.dir/builder.cpp.o" "gcc" "src/netio/CMakeFiles/lumen_netio.dir/builder.cpp.o.d"
  "/root/repo/src/netio/bytes.cpp" "src/netio/CMakeFiles/lumen_netio.dir/bytes.cpp.o" "gcc" "src/netio/CMakeFiles/lumen_netio.dir/bytes.cpp.o.d"
  "/root/repo/src/netio/parse.cpp" "src/netio/CMakeFiles/lumen_netio.dir/parse.cpp.o" "gcc" "src/netio/CMakeFiles/lumen_netio.dir/parse.cpp.o.d"
  "/root/repo/src/netio/pcap.cpp" "src/netio/CMakeFiles/lumen_netio.dir/pcap.cpp.o" "gcc" "src/netio/CMakeFiles/lumen_netio.dir/pcap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
