file(REMOVE_RECURSE
  "liblumen_netio.a"
)
