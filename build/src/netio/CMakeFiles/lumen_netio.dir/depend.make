# Empty dependencies file for lumen_netio.
# This may be replaced when dependencies are built.
