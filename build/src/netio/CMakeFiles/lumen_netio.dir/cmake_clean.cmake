file(REMOVE_RECURSE
  "CMakeFiles/lumen_netio.dir/builder.cpp.o"
  "CMakeFiles/lumen_netio.dir/builder.cpp.o.d"
  "CMakeFiles/lumen_netio.dir/bytes.cpp.o"
  "CMakeFiles/lumen_netio.dir/bytes.cpp.o.d"
  "CMakeFiles/lumen_netio.dir/parse.cpp.o"
  "CMakeFiles/lumen_netio.dir/parse.cpp.o.d"
  "CMakeFiles/lumen_netio.dir/pcap.cpp.o"
  "CMakeFiles/lumen_netio.dir/pcap.cpp.o.d"
  "liblumen_netio.a"
  "liblumen_netio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_netio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
