file(REMOVE_RECURSE
  "CMakeFiles/lumen_trace.dir/attacks.cpp.o"
  "CMakeFiles/lumen_trace.dir/attacks.cpp.o.d"
  "CMakeFiles/lumen_trace.dir/registry.cpp.o"
  "CMakeFiles/lumen_trace.dir/registry.cpp.o.d"
  "CMakeFiles/lumen_trace.dir/sim.cpp.o"
  "CMakeFiles/lumen_trace.dir/sim.cpp.o.d"
  "liblumen_trace.a"
  "liblumen_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lumen_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
