# Empty dependencies file for lumen_trace.
# This may be replaced when dependencies are built.
