file(REMOVE_RECURSE
  "liblumen_trace.a"
)
