// The §2.2 operator scenario: a small business wants to detect brute-force
// and DoS attacks on its IoT devices and needs to pick an algorithm. Lumen
// answers with data instead of a literature search: it runs the faithful
// per-attack evaluation and recommends the algorithm with the best worst-case
// precision over the attacks the operator cares about.
#include <cstdio>
#include <map>

#include "eval/benchmark.h"
#include "eval/report.h"

int main() {
  using namespace lumen;

  const std::vector<trace::AttackType> wanted = {
      trace::AttackType::kBruteForce, trace::AttackType::kDosHulk,
      trace::AttackType::kDosSlowloris, trace::AttackType::kDosGoldenEye,
      trace::AttackType::kSynFlood};
  std::printf("Operator goal: detect");
  for (auto a : wanted) std::printf(" %s", trace::attack_name(a));
  std::printf("\n(connection-level deployment at the gateway)\n\n");

  eval::Benchmark::Options opts;
  opts.dataset_scale = 0.4;
  eval::Benchmark bench(opts);

  // Candidate algorithms: everything that runs at connection/uniflow
  // granularity (the deployment constraint).
  std::vector<std::string> candidates;
  for (const auto& algo : core::algorithm_registry()) {
    if (algo.granularity != trace::Granularity::kPacket &&
        algo.id.rfind("AM", 0) != 0) {
      candidates.push_back(algo.id);
    }
  }

  // Evaluate each candidate on every connection dataset containing one of
  // the wanted attacks; track per-attack precision.
  std::map<std::string, std::map<trace::AttackType, std::vector<double>>> per;
  for (const std::string& algo : candidates) {
    for (const std::string& ds_id : trace::connection_dataset_ids()) {
      const trace::Dataset& ds = bench.dataset(ds_id);
      bool relevant = false;
      for (auto a : wanted) relevant |= ds.attack_types().count(a) != 0;
      if (!relevant) continue;
      auto run = bench.same_dataset(algo, ds_id);
      if (!run.ok()) continue;
      for (const eval::AttackScore& s : bench.per_attack(run.value())) {
        for (auto a : wanted) {
          if (s.attack == a) per[algo][a].push_back(s.precision);
        }
      }
    }
  }

  // Render the decision table.
  std::vector<std::string> cols;
  for (auto a : wanted) cols.push_back(trace::attack_name(a));
  eval::Heatmap heat = eval::Heatmap::make(
      "per-attack precision (candidates x operator's attacks)", candidates,
      cols);
  std::string best_algo;
  double best_worst = -1.0;
  for (size_t r = 0; r < candidates.size(); ++r) {
    double worst = 2.0;
    bool covered = true;
    for (size_t c = 0; c < wanted.size(); ++c) {
      const auto& vals = per[candidates[r]][wanted[c]];
      if (vals.empty()) {
        covered = false;
        continue;
      }
      double sum = 0.0;
      for (double v : vals) sum += v;
      const double mean = sum / static_cast<double>(vals.size());
      heat.at(r, c) = mean;
      worst = std::min(worst, mean);
    }
    if (covered && worst > best_worst) {
      best_worst = worst;
      best_algo = candidates[r];
    }
  }
  std::printf("%s\n", heat.render().c_str());

  const core::AlgorithmDef* pick = core::find_algorithm(best_algo);
  std::printf(
      "Recommendation: deploy %s (%s, %s) — worst-case mean precision %.2f\n"
      "across the attacks you named. Re-run this playbook whenever your\n"
      "traffic mix changes; Observation 4 says the answer is attack-"
      "dependent.\n",
      best_algo.c_str(), pick != nullptr ? pick->label.c_str() : "?",
      pick != nullptr ? pick->paper.c_str() : "?", best_worst);
  return 0;
}
