// Quickstart: define an anomaly-detection algorithm as a Lumen template
// (the paper's Fig. 4 workflow), run it end to end on a benchmark dataset,
// and inspect the engine's per-operation time/memory profile.
//
//   ./quickstart [dataset-id]     (default: F4, the CTU Mirai stand-in)
#include <cstdio>

#include "core/engine.h"
#include "trace/registry.h"

int main(int argc, char** argv) {
  using namespace lumen;

  const std::string dataset_id = argc > 1 ? argv[1] : "F4";
  std::printf("Generating benchmark dataset %s ...\n", dataset_id.c_str());
  const trace::Dataset ds = trace::make_dataset(dataset_id, 0.5);
  std::printf("  %zu packets, %zu malicious (%s-labeled), attacks:",
              ds.packets(), ds.malicious_packets(),
              trace::granularity_name(ds.label_granularity));
  for (trace::AttackType a : ds.attack_types()) {
    std::printf(" %s", trace::attack_name(a));
  }
  std::printf("\n\n");

  // The whole algorithm is this template: extract fields, group by source
  // IP, slice into 10-second windows, aggregate, train a random forest.
  const char* kTemplate = R"(algorithm = [
    {'func': 'Field Extract', 'input': None, 'output': 'Packets',
     'param': ['srcIP', 'dstIP', 'TCPFlags', 'packetLength']},
    {'func': 'Groupby', 'input': ['Packets'], 'output': 'Grouped_packets',
     'flowid': ['srcIp']},
    {'func': 'TimeSlice', 'input': ['Grouped_packets'],
     'output': 'Sliced_packets', 'window': 10},
    {'func': 'ApplyAggregates', 'input': ['Sliced_packets'],
     'output': 'AllFeatures',
     'list': [{'field': 'len', 'funcs': ['mean', 'std']},
              {'field': 'iat', 'funcs': ['mean', 'std']},
              {'func': 'count'}, {'func': 'bytes_rate'},
              {'field': 'dport', 'funcs': ['distinct', 'entropy']}]},
    {'func': 'split', 'input': ['AllFeatures'], 'output': 'Train',
     'train_fraction': 0.7, 'take': 'train'},
    {'func': 'split', 'input': ['AllFeatures'], 'output': 'Test',
     'train_fraction': 0.7, 'take': 'test'},
    {'func': 'model', 'model_type': 'RandomForest', 'input': None,
     'output': 'clf'},
    {'func': 'train', 'input': ['clf', 'Train'], 'output': 'clf_trained'},
    {'func': 'predict', 'input': ['clf_trained', 'Test'], 'output': 'Preds'},
    {'func': 'evaluate', 'input': ['Preds'], 'output': 'Metrics'},
  ])";

  auto spec = core::PipelineSpec::parse(kTemplate);
  if (!spec.ok()) {
    std::fprintf(stderr, "template error: %s\n", spec.error().message.c_str());
    return 1;
  }

  core::OpContext ctx;
  ctx.dataset = &ds;
  core::Engine engine;
  auto report = engine.run(spec.value(), ctx);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n",
                 report.error().message.c_str());
    return 1;
  }

  const core::Metrics* m = report.value().get<core::Metrics>("Metrics");
  std::printf("Results on the held-out 30%% of %s:\n", dataset_id.c_str());
  for (const auto& [name, value] : m->values) {
    std::printf("  %-10s %.4f\n", name.c_str(), value);
  }

  // The profile is rebuilt from the telemetry spans the run recorded into
  // the process registry — the same records a /metrics scraper sees.
  std::printf("\nEngine profile (per-operation time and memory):\n%s\n",
              core::render_op_profile(
                  core::profile_from_spans(
                      telemetry::Registry::process().snapshot(),
                      report.value().span_ids, "engine.op."),
                  report.value().peak_bytes)
                  .c_str());
  return 0;
}
