// §6 of the paper: "our proposed framework is, in fact, more general ...
// if we were to extend our framework to do ML-based device classification,
// we would only need to add a new dataset ... and the rest of the
// functions/modules would be used directly."
//
// This example does exactly that: a new task (camera vs. smart-plug device
// classification), reusing the same operations — field extraction, grouping
// by source IP, time slicing, aggregation — and the same model zoo. Only the
// labeling changes.
#include <cstdio>

#include "core/engine.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "trace/sim.h"

int main() {
  using namespace lumen;

  // A LAN with two device populations that BEHAVE differently:
  // cameras (hosts .10-.13): TLS-heavy, large upstream payloads;
  // plugs   (hosts .20-.23): MQTT keepalives, tiny payloads.
  trace::Sim sim(909090);
  trace::BenignStyle cameras;
  cameras.host_base = 10;
  cameras.size_scale = 2.5;
  cameras.w_tls = 2.5;
  cameras.w_mqtt = 0.1;
  trace::BenignStyle plugs;
  plugs.host_base = 20;
  plugs.size_scale = 0.4;
  plugs.w_tls = 0.2;
  plugs.w_mqtt = 2.0;
  sim.benign_iot_traffic(0.0, 240.0, 4, cameras);
  sim.benign_iot_traffic(0.0, 240.0, 4, plugs);
  const trace::Dataset ds =
      sim.finish("DEV", "device-classification demo",
                 trace::Granularity::kPacket);
  std::printf("Generated %zu packets from 8 devices (4 cameras, 4 plugs)\n\n",
              ds.packets());

  // The identical pipeline fragment Lumen's IDS algorithms use.
  auto spec = core::PipelineSpec::parse(R"([
    {"func": "field_extract", "input": None, "output": "Packets",
     "param": ["srcIP", "packetLength"]},
    {"func": "groupby", "input": ["Packets"], "output": "Grouped",
     "flowid": ["srcip"]},
    {"func": "time_slice", "input": ["Grouped"], "output": "Windows",
     "window": 15},
    {"func": "apply_aggregates", "input": ["Windows"], "output": "Features",
     "list": [{"field": "len", "funcs": ["mean", "std", "max"]},
              {"field": "iat", "funcs": ["mean", "std"]},
              {"func": "count"}, {"func": "bytes_rate"},
              {"field": "dport", "funcs": ["distinct", "entropy"]}]},
  ])");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.error().message.c_str());
    return 1;
  }

  // Keep the Grouped binding so we can read the group keys for relabeling.
  core::Engine::Options opts;
  opts.keep = {"Windows"};
  core::OpContext ctx;
  ctx.dataset = &ds;
  auto report = core::Engine(opts).run(spec.value(), ctx);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.error().message.c_str());
    return 1;
  }
  const auto* windows = report.value().get<core::GroupedPackets>("Windows");
  const auto* feats = report.value().get<features::FeatureTable>("Features");
  if (windows == nullptr || feats == nullptr) {
    std::fprintf(stderr, "pipeline produced unexpected bindings\n");
    return 1;
  }

  // THE ONLY NEW CODE FOR THE NEW TASK: relabel rows with the device type
  // (1 = camera). Group keys are "192.168.1.<host>#w<k>".
  features::FeatureTable task = *feats;
  for (size_t r = 0; r < task.rows && r < windows->groups.size(); ++r) {
    const std::string& key = windows->groups[r].key;
    const size_t dot = key.rfind('.');
    const int host = std::atoi(key.c_str() + dot + 1);
    task.labels[r] = host < 20 ? 1 : 0;
  }

  // Same split/model machinery as the IDS benchmarks.
  std::vector<size_t> train_idx, test_idx;
  for (size_t r = 0; r < task.rows; ++r) {
    (r % 3 == 0 ? test_idx : train_idx).push_back(r);
  }
  ml::RandomForest rf;
  rf.fit(task.select_rows(train_idx));
  const features::FeatureTable test = task.select_rows(test_idx);
  const auto pred = rf.predict(test);
  const ml::Confusion c = ml::confusion(test.labels, pred);
  std::printf("Device classification (camera vs plug), per 15s window:\n");
  std::printf("  accuracy  %.3f\n  precision %.3f\n  recall    %.3f\n",
              ml::accuracy(c), ml::precision(c), ml::recall(c));
  std::printf(
      "\nNo framework changes were needed — the same ~30 operations and the\n"
      "same model zoo served a different ML-on-network-data task.\n");
  return 0;
}
