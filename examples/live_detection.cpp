// Online gateway detection through the ingestion runtime: write a capture
// with Lumen's own pcap writer, replay it from disk through a PacketSource
// (as a gateway replaying a capture would), and let the IngestRuntime's
// consumer thread parse, score with OnlineKitsune, and emit alerts into a
// timeline sink. Nothing here looks at the future: statistics, the feature
// map, the autoencoders, and the threshold all come from the stream prefix.
//
//   ./live_detection [output.pcap]
#include <cstdio>
#include <filesystem>

#include "common/telemetry.h"
#include "core/ingest.h"
#include "core/stream.h"
#include "netio/pcap.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace {

// Coalesces scored packets into a 5-second alert timeline. Ground truth
// comes from the generator labels, addressed by original capture index (a
// real gateway would not have it). The runtime serializes sink calls.
class TimelineSink : public lumen::core::AlertSink {
 public:
  explicit TimelineSink(const std::vector<uint8_t>& truth) : truth_(truth) {}

  void on_alert(const lumen::core::Alert&) override {}

  void on_packet(const lumen::netio::PacketView& v, double score,
                 bool alerted) override {
    if (!started_) {
      window_start_ = v.ts;
      started_ = true;
      std::printf("%-10s %-8s %-8s %s\n", "window", "packets", "alerts",
                  "truth:malicious");
    }
    ++window_pkts_;
    window_alerts_ += alerted;
    total_alerts_ += alerted;
    const bool truly_bad = v.index < truth_.size() && truth_[v.index] != 0;
    window_true_ += truly_bad;
    total_true_ += truly_bad;
    if (v.ts - window_start_ >= 5.0) {
      std::printf("t+%-8.0f %-8zu %-8zu %zu\n", window_start_, window_pkts_,
                  window_alerts_, window_true_);
      window_start_ = v.ts;
      window_pkts_ = window_alerts_ = window_true_ = 0;
    }
  }

  size_t total_alerts() const { return total_alerts_; }
  size_t total_true() const { return total_true_; }

 private:
  const std::vector<uint8_t>& truth_;
  bool started_ = false;
  double window_start_ = 0.0;
  size_t window_pkts_ = 0, window_alerts_ = 0, window_true_ = 0;
  size_t total_alerts_ = 0, total_true_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lumen;
  const std::string pcap_path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "lumen_live.pcap")
                     .string();

  // A camera network that gets infected with Mirai partway through.
  std::printf("Generating the Kitsune Mirai stand-in capture (P1)...\n");
  const trace::Dataset ds = trace::make_dataset("P1", 0.5);

  // Persist the capture with our own pcap writer and reload it — the same
  // path an operator would use with a real gateway capture.
  if (auto w = netio::write_pcap(pcap_path, ds.trace); !w.ok()) {
    std::fprintf(stderr, "pcap write: %s\n", w.error().message.c_str());
    return 1;
  }
  auto source_r = netio::PcapReplaySource::open(pcap_path);
  if (!source_r.ok()) {
    std::fprintf(stderr, "pcap read: %s\n", source_r.error().message.c_str());
    return 1;
  }
  netio::PcapReplaySource& full = *source_r.value();
  const netio::Trace& live = full.trace();
  std::printf("Wrote and reloaded %zu packets via %s\n\n", live.size(),
              pcap_path.c_str());

  // Grace period: the first 45% of the stream trains the detector.
  const size_t grace = live.view.size() * 45 / 100;
  core::OnlineKitsune detector;
  detector.train({live.view.data(), grace});
  std::printf(
      "Trained OnlineKitsune on a %zu-packet grace period "
      "(threshold %.4f)\n\n",
      grace, detector.threshold());

  // Stream the rest through the ingestion runtime: a replay source feeding
  // the bounded queue, one consumer scoring with the trained detector.
  netio::ReplayOptions replay;
  replay.begin = grace;
  netio::TraceReplaySource rest(live, replay);

  TimelineSink sink(ds.pkt_label);
  core::IngestRuntime::Options opts;
  opts.consumers = 1;  // one consumer keeps the timeline in capture order
  // Instruments land in a registry a monitoring agent could scrape mid-run;
  // here we use an example-local one and dump it after the stream ends.
  telemetry::Registry registry;
  opts.registry = &registry;
  opts.instrument_prefix = "gateway.";
  core::IngestRuntime runtime(
      opts,
      [&detector](size_t) {
        return std::make_unique<core::KitsuneScorer>(detector);
      },
      &sink);
  auto stats_r = runtime.run(rest);
  if (!stats_r.ok()) {
    std::fprintf(stderr, "ingest: %s\n", stats_r.error().message.c_str());
    return 1;
  }
  // Accounting comes straight off the telemetry registry — the same
  // counters a monitoring agent scrapes (IngestStats is a compatibility
  // façade over these; see core/ingest.h).
  const telemetry::Snapshot snap = registry.snapshot();

  std::printf(
      "\n%zu alerts over %llu streamed packets (%zu truly malicious).\n",
      sink.total_alerts(),
      static_cast<unsigned long long>(snap.counter_value("gateway.scored")),
      sink.total_true());
  std::printf(
      "ingest stats: enqueued=%llu dropped=%llu parse_skipped=%llu "
      "scored=%llu alerted=%llu queue_high_water=%zu\n",
      static_cast<unsigned long long>(snap.counter_value("gateway.enqueued")),
      static_cast<unsigned long long>(snap.counter_value("gateway.dropped")),
      static_cast<unsigned long long>(
          snap.counter_value("gateway.parse_skipped")),
      static_cast<unsigned long long>(snap.counter_value("gateway.scored")),
      static_cast<unsigned long long>(snap.counter_value("gateway.alerted")),
      static_cast<size_t>(snap.gauge_value("gateway.queue.high_water")));

  // The same numbers, as the Prometheus text a /metrics endpoint would
  // serve (counters and gauges only; histogram series elided for brevity).
  std::printf("\nPrometheus scrape excerpt:\n");
  telemetry::Snapshot scalars;
  scalars.counters = snap.counters;
  scalars.gauges = snap.gauges;
  std::fputs(scalars.to_prometheus().c_str(), stdout);
  std::filesystem::remove(pcap_path);
  return 0;
}
