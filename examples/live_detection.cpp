// Online gateway detection over a pcap file, using the streaming API:
// write a capture with Lumen's own pcap writer, read it back (as a gateway
// replaying a capture would), train OnlineKitsune on the benign head of the
// stream, and then process the rest packet by packet, printing an alert
// timeline. Nothing here looks at the future: statistics, the feature map,
// the autoencoders, and the threshold all come from the stream prefix.
//
//   ./live_detection [output.pcap]
#include <cstdio>
#include <filesystem>

#include "core/stream.h"
#include "netio/pcap.h"
#include "trace/registry.h"

int main(int argc, char** argv) {
  using namespace lumen;
  const std::string pcap_path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "lumen_live.pcap")
                     .string();

  // A camera network that gets infected with Mirai partway through.
  std::printf("Generating the Kitsune Mirai stand-in capture (P1)...\n");
  const trace::Dataset ds = trace::make_dataset("P1", 0.5);

  // Persist the capture with our own pcap writer and reload it — the same
  // path an operator would use with a real gateway capture.
  if (auto w = netio::write_pcap(pcap_path, ds.trace); !w.ok()) {
    std::fprintf(stderr, "pcap write: %s\n", w.error().message.c_str());
    return 1;
  }
  auto reloaded = netio::read_pcap(pcap_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "pcap read: %s\n", reloaded.error().message.c_str());
    return 1;
  }
  const netio::Trace& live = reloaded.value();
  std::printf("Wrote and reloaded %zu packets via %s\n\n", live.size(),
              pcap_path.c_str());

  // Grace period: the first 45% of the stream trains the detector.
  const size_t grace = live.view.size() * 45 / 100;
  core::OnlineKitsune detector;
  detector.train({live.view.data(), grace});
  std::printf(
      "Trained OnlineKitsune on a %zu-packet grace period "
      "(threshold %.4f)\n\n",
      grace, detector.threshold());

  // Stream the rest live; coalesce a 5-second alert timeline. Ground truth
  // comes from the generator (a real gateway would not have it).
  std::printf("%-10s %-8s %-8s %s\n", "window", "packets", "alerts",
              "truth:malicious");
  size_t window_pkts = 0, window_alerts = 0, window_true = 0;
  double window_start = live.view[grace].ts;
  size_t total_alerts = 0, total_true = 0;
  for (size_t i = grace; i < live.view.size(); ++i) {
    const bool alert = detector.process(live.view[i]);
    ++window_pkts;
    window_alerts += alert;
    total_alerts += alert;
    window_true += ds.pkt_label[i];
    total_true += ds.pkt_label[i];
    if (live.view[i].ts - window_start >= 5.0) {
      std::printf("t+%-8.0f %-8zu %-8zu %zu\n", window_start, window_pkts,
                  window_alerts, window_true);
      window_start = live.view[i].ts;
      window_pkts = window_alerts = window_true = 0;
    }
  }
  std::printf(
      "\n%zu alerts over %zu streamed packets (%zu truly malicious).\n",
      total_alerts, live.view.size() - grace, total_true);
  std::filesystem::remove(pcap_path);
  return 0;
}
