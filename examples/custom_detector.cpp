// Prototyping a NEW algorithm with Lumen and comparing it against the
// state of the art (the §3.1 "first step" workflow): the user composes a
// fresh detector out of existing building blocks — Zeek-style connection
// features + the IIoT jitter/retransmission block, decorrelated, normalized,
// fed to an AutoML model — then benchmarks it against registry algorithms
// on the same datasets.
#include <cstdio>

#include "eval/benchmark.h"
#include "ml/metrics.h"

int main() {
  using namespace lumen;

  // A brand-new detector: nothing here is special-cased in the framework;
  // it is the same template language every registry algorithm uses.
  core::AlgorithmDef mine;
  mine.id = "MINE";
  mine.label = "my custom detector";
  mine.paper = "you, just now";
  mine.granularity = trace::Granularity::kConnection;
  mine.needs_ip = true;
  mine.feature_template = R"([
    {"func": "field_extract", "input": None, "output": "Packets", "param": []},
    {"func": "connections", "input": ["Packets"], "output": "Conns"},
    {"func": "conn_features", "input": ["Conns"], "output": "Features",
     "set": ["zeek", "iiot"]},
  ])";
  mine.model_spec =
      R"({"model_type": "AutoML", "normalize": true, "decorrelate": true})";

  // Sanity-check the template before running anything (the engine's static
  // analysis catches wiring and type errors up front).
  auto spec = core::PipelineSpec::parse(mine.feature_template);
  if (!spec.ok()) {
    std::fprintf(stderr, "template: %s\n", spec.error().message.c_str());
    return 1;
  }
  if (auto check = core::Engine().type_check(spec.value()); !check.ok()) {
    std::fprintf(stderr, "type check: %s\n", check.error().message.c_str());
    return 1;
  }
  std::printf("Template type-checks. Benchmarking against the registry...\n\n");

  eval::Benchmark::Options opts;
  opts.dataset_scale = 0.4;
  eval::Benchmark bench(opts);

  const std::vector<std::string> rivals = {"A10", "A13", "A14", "A15"};
  const std::vector<std::string> datasets = {"F0", "F1", "F4", "F5", "F6"};

  std::printf("%-22s", "same-dataset precision");
  for (const std::string& ds : datasets) std::printf("  %6s", ds.c_str());
  std::printf("  %6s\n", "mean");

  auto evaluate = [&](const core::AlgorithmDef& algo) {
    std::printf("%-22s", algo.id == "MINE" ? "MINE (yours)" : algo.id.c_str());
    double sum = 0.0;
    int n = 0;
    for (const std::string& ds_id : datasets) {
      const trace::Dataset& ds = bench.dataset(ds_id);
      auto feats = core::compute_features(algo, ds);
      if (!feats.ok()) {
        std::printf("  %6s", "--");
        continue;
      }
      auto [train, test] = eval::Benchmark::split_by_time(feats.value(), 0.7);
      auto model = core::make_algorithm_model(algo);
      if (!model.ok()) continue;
      core::ModelValue mv = std::move(model).value();
      features::FeatureTable X = train;
      if (mv.decorrelate) {
        mv.corr_filter = std::make_shared<features::CorrelationFilter>();
        mv.corr_filter->fit(X);
        X = mv.corr_filter->apply(X);
      }
      if (mv.normalize) {
        mv.normalizer = std::make_shared<features::Normalizer>();
        mv.normalizer->fit(X);
        mv.normalizer->apply(X);
      }
      mv.model->fit(X);
      features::FeatureTable T = test;
      if (mv.corr_filter) T = mv.corr_filter->apply(T);
      if (mv.normalizer) mv.normalizer->apply(T);
      const auto pred = mv.model->predict(T);
      const auto c = ml::confusion(T.labels, pred);
      const double p = ml::precision(c);
      std::printf("  %6.3f", p);
      sum += p;
      ++n;
    }
    std::printf("  %6.3f\n", n > 0 ? sum / n : 0.0);
  };

  for (const std::string& r : rivals) {
    evaluate(*core::find_algorithm(r));
  }
  evaluate(mine);

  std::printf(
      "\nThat is the whole workflow: write a template, type-check it, and\n"
      "the benchmarking suite gives you a faithful comparison against the\n"
      "reimplemented literature on identical data.\n");
  return 0;
}
