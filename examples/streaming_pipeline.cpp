// Deploying a batch-authored spec on the live path: train a windowed
// KitNET with the batch Engine, compile the same pipeline text with
// compile_streaming, and let the IngestRuntime's pipeline sink mode run it
// continuously over a looping replay source — grouping, tumbling windows,
// aggregates, normalization, and model scoring all evaluated incrementally,
// with per-epoch results arriving while the stream is still flowing. The
// batch engine stays the oracle: the streaming chain's epochs are the same
// rows a whole-table run would produce, bit for bit.
//
//   ./streaming_pipeline
#include <cstdio>
#include <string>
#include <utility>

#include "common/telemetry.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "core/stream_op.h"
#include "netio/parse.h"
#include "netio/source.h"
#include "trace/registry.h"

namespace {

using namespace lumen;

core::PipelineSpec parse_spec(const std::string& body) {
  auto spec = core::PipelineSpec::parse("[" + body + "]");
  if (!spec.ok()) {
    std::fprintf(stderr, "spec parse: %s\n", spec.error().message.c_str());
    std::exit(1);
  }
  return std::move(spec).value();
}

/// The first `end` packets of `ds` as their own dataset (the grace region
/// the batch trainer sees).
trace::Dataset slice_prefix(const trace::Dataset& ds, size_t end) {
  trace::Dataset out;
  out.id = ds.id + "-train";
  out.label_granularity = ds.label_granularity;
  out.trace.link = ds.trace.link;
  for (size_t j = 0; j < end; ++j) {
    out.trace.raw.push_back(ds.trace.raw[j]);
    out.pkt_label.push_back(ds.label_at(j));
    out.pkt_attack.push_back(ds.attack_at(j));
  }
  netio::parse_trace(out.trace);
  return out;
}

/// Prints one line per completed epoch as the runtime's consumer hands
/// them over (serialized by the runtime, so no locking here).
class EpochPrinter : public core::EpochSink {
 public:
  void on_epoch(const core::EpochBatch& b, size_t) override {
    size_t alerts = 0;
    if (b.scored) {
      for (int p : b.predictions) alerts += p != 0;
    }
    total_rows_ += b.table.rows;
    total_alerts_ += alerts;
    ++epochs_;
    std::printf("  epoch %-4llu t+%-7.1f %3zu group-windows  %2zu alerts\n",
                static_cast<unsigned long long>(b.epoch), b.window_start,
                b.table.rows, alerts);
  }

  size_t epochs() const { return epochs_; }
  size_t total_rows() const { return total_rows_; }
  size_t total_alerts() const { return total_alerts_; }

 private:
  size_t epochs_ = 0, total_rows_ = 0, total_alerts_ = 0;
};

}  // namespace

int main() {
  std::printf("Generating the Kitsune Mirai stand-in capture (P1)...\n");
  const trace::Dataset ds = trace::make_dataset("P1", 0.5);
  const size_t grace = ds.trace.view.size() * 45 / 100;
  const trace::Dataset train = slice_prefix(ds, grace);
  const double live_span =
      ds.trace.view.back().ts - ds.trace.view[grace].ts;
  const double window = live_span / 8.0;

  // One pipeline text. The batch run appends model+train to produce the
  // ModelValue; the deploy run appends predict and consumes it as a
  // binding — same front end both times.
  const std::string front = R"(
    {"func": "field_extract", "input": None, "output": "P",
     "param": ["srcIP", "packetLength"]},
    {"func": "filter", "input": ["P"], "output": "PF", "require": ["len"]},
    {"func": "groupby", "input": ["PF"], "output": "G", "flowid": ["srcmac"]},
    {"func": "time_slice", "input": ["G"], "output": "W", "window": )" +
                            std::to_string(window) + R"(, "align": "global"},
    {"func": "apply_aggregates", "input": ["W"], "output": "F"},
    {"func": "normalize", "input": ["F"], "output": "N", "kind": "minmax"},)";

  std::printf("Batch-training the windowed KitNET on a %zu-packet grace "
              "period...\n\n", grace);
  core::Engine::Options eopts;
  eopts.registry = nullptr;
  core::OpContext tctx;
  tctx.dataset = &train;
  auto trained = core::Engine(eopts).run(
      parse_spec(front + R"(
        {"func": "model", "input": None, "output": "M0",
         "model_type": "KitNET", "normalize": true},
        {"func": "train", "input": ["M0", "N"], "output": "Model"},)"),
      tctx);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.error().message.c_str());
    return 1;
  }
  const core::ModelValue model =
      *trained.value().get<core::ModelValue>("Model");

  // Deploy: the ingestion runtime builds one compiled chain per consumer;
  // bindings carry the trained model into the chain's predict stage.
  const core::PipelineSpec deploy = parse_spec(
      front + R"({"func": "predict", "input": ["Model", "N"],
                  "output": "Preds"},)");
  telemetry::Registry registry;
  core::IngestRuntime::Options opts;
  opts.consumers = 1;  // one chain keeps epochs in capture order
  opts.registry = &registry;
  opts.instrument_prefix = "gateway.";
  EpochPrinter sink;
  core::IngestRuntime runtime(
      opts,
      [&](size_t) -> std::unique_ptr<core::StreamPipeline> {
        core::StreamingOptions sopts;
        sopts.bindings.emplace("Model", model);
        sopts.registry = &registry;
        auto chain = core::compile_streaming(deploy, std::move(sopts));
        if (!chain.ok()) {
          std::fprintf(stderr, "compile: %s\n",
                       chain.error().message.c_str());
          std::exit(1);
        }
        return std::move(chain).value();
      },
      &sink);

  // Loop the post-grace region three times so the stream outlives one
  // capture: group state is keyed by who is on the network, not by how
  // long the stream runs, so memory stays bounded across passes.
  const trace::Dataset live = [&] {
    trace::Dataset out;
    out.id = ds.id + "-live";
    out.label_granularity = ds.label_granularity;
    out.trace.link = ds.trace.link;
    for (size_t j = grace; j < ds.trace.raw.size(); ++j) {
      out.trace.raw.push_back(ds.trace.raw[j]);
      out.pkt_label.push_back(ds.label_at(j));
      out.pkt_attack.push_back(ds.attack_at(j));
    }
    netio::parse_trace(out.trace);
    return out;
  }();
  netio::TraceReplaySource inner(live.trace);
  netio::LoopOptions lo;
  lo.loops = 3;
  netio::LoopingSource source(inner, lo);

  std::printf("Streaming the live region x%zu through the compiled chain:\n",
              lo.loops);
  auto stats_r = runtime.run(source);
  if (!stats_r.ok()) {
    std::fprintf(stderr, "ingest: %s\n", stats_r.error().message.c_str());
    return 1;
  }
  // Accounting straight from the shared registry (IngestStats is a
  // compatibility façade over the same counters).
  const telemetry::Snapshot snap = registry.snapshot();

  std::printf(
      "\n%zu epochs, %zu group-window rows, %zu alerted rows over %llu "
      "streamed packets.\n",
      sink.epochs(), sink.total_rows(), sink.total_alerts(),
      static_cast<unsigned long long>(snap.counter_value("gateway.scored")));

  // The chain's own instruments sit next to the runtime's in the shared
  // registry — this is what a /metrics endpoint would serve mid-run.
  std::printf("\nPrometheus scrape excerpt:\n");
  telemetry::Snapshot scalars;
  scalars.counters = snap.counters;
  scalars.gauges = snap.gauges;
  std::fputs(scalars.to_prometheus().c_str(), stdout);
  return sink.epochs() > 0 && sink.total_rows() > 0 ? 0 : 1;
}
