// Live socket gateway walkthrough: the event-driven front-end end to end.
//
// Two IoT sites stream captures to one gateway over loopback TCP, each
// authenticated to its own tenant. The gateway multiplexes both
// connections through a single epoll loop on the ingest producer thread,
// decodes the record framing, and routes each tenant's packets to that
// tenant's own scorer. Mid-run, tenant 2's model is hot-swapped with
// deploy(tenant, factory) — tenant 1's detector keeps its streaming state
// untouched, and the swap is visible in the per-tenant telemetry.
//
//   ./socket_gateway
#include <cstdio>
#include <map>
#include <thread>

#include "common/telemetry.h"
#include "core/ingest.h"
#include "netio/frontend.h"
#include "trace/registry.h"

namespace {

using namespace lumen;

// Threshold-on-length toy scorers so the swap is visible in the output;
// swap in core::OnlineKitsune (see live_detection.cpp) for a real model.
core::ScorerFactory length_scorer(double threshold) {
  return [threshold](size_t) {
    return std::make_unique<core::FnScorer>(
        [](const netio::PacketView& v) {
          return static_cast<double>(v.wire_len);
        },
        threshold);
  };
}

class CountingSink : public core::AlertSink {
 public:
  void on_alert(const core::Alert& a) override {
    ++alerts_by_tenant_[a.tenant];
  }
  size_t alerts(uint32_t tenant) const {
    auto it = alerts_by_tenant_.find(tenant);
    return it == alerts_by_tenant_.end() ? 0 : it->second;
  }

 private:
  std::map<uint32_t, size_t> alerts_by_tenant_;
};

}  // namespace

int main() {
  // Two captures: a Mirai infection (P1) and an OS-scan sweep (P3).
  std::printf("Generating site captures...\n");
  const trace::Dataset site1 = trace::make_dataset("P1", 0.2);
  const trace::Dataset site2 = trace::make_dataset("P3", 0.2);

  // The runtime: one consumer, per-tenant scorers registered up front.
  // Both tenants start with an insensitive model (threshold 10 kB — it
  // alerts on nearly nothing).
  telemetry::Registry reg;
  core::IngestRuntime::Options opts;
  opts.registry = &reg;
  CountingSink sink;
  core::IngestRuntime rt(opts, length_scorer(1e9), &sink);
  rt.register_tenant(1, length_scorer(10000.0));
  rt.register_tenant(2, length_scorer(10000.0));

  // The gateway front-end: a TCP listener on an ephemeral loopback port,
  // driven by the runtime's producer thread inside rt.run(fe).
  netio::FrontendOptions fopts;
  fopts.link = site1.trace.link;
  // Each send_trace_tcp call is one connection = one stream: site 1 sends
  // one, site 2 sends two bursts. Drain once all three finished.
  fopts.min_streams = 3;
  fopts.registry = &reg;
  netio::GatewayFrontend fe(fopts);
  if (auto b = fe.bind(); !b.ok()) {
    std::fprintf(stderr, "bind: %s\n", b.error().message.c_str());
    return 1;
  }
  std::printf("Gateway listening on 127.0.0.1:%u\n", fe.tcp_port());

  // Site clients. send_trace_tcp is the reference client: hello (magic,
  // tenant, link), then one length-prefixed record per packet carrying
  // the original capture index and exact timestamp, then FIN.
  std::thread client1([&] {
    auto s = netio::send_trace_tcp("127.0.0.1", fe.tcp_port(),
                                   site1.trace, /*tenant=*/1);
    if (!s.ok()) std::fprintf(stderr, "site1: %s\n", s.error().message.c_str());
  });
  const size_t half = site2.trace.raw.size() / 2;
  std::thread client2([&] {
    // Site 2 streams in two bursts so the hot swap lands between them.
    auto s1 = netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), site2.trace,
                                    /*tenant=*/2, 0, half);
    if (!s1.ok()) std::fprintf(stderr, "site2: %s\n",
                               s1.error().message.c_str());
    // Wait until the gateway scored the first burst, then the operator
    // deploys a retrained (much more sensitive) model for tenant 2 ONLY.
    while (reg.snapshot().counter_value("ingest.tenant2.scored") < half) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    rt.deploy(2, length_scorer(60.0));
    std::printf("deployed sensitive model for tenant 2 (tenant 1 untouched)\n");
    auto s2 = netio::send_trace_tcp("127.0.0.1", fe.tcp_port(), site2.trace,
                                    /*tenant=*/2, half);
    if (!s2.ok()) std::fprintf(stderr, "site2: %s\n",
                               s2.error().message.c_str());
  });

  // Drive the gateway: this thread runs the epoll loop until both streams
  // finished and every connection drained.
  auto stats = rt.run(fe);
  client1.join();
  client2.join();
  if (!stats.ok()) {
    std::fprintf(stderr, "run: %s\n", stats.error().message.c_str());
    return 1;
  }

  // Per-connection accounting from the front-end...
  std::printf("\n%-6s %-21s %-8s %-8s %-6s %s\n", "tenant", "peer", "frames",
              "bytes", "shed", "close");
  for (const netio::ConnReport& r : fe.connections()) {
    std::printf("%-6u %-21s %-8llu %-8llu %-6llu %s\n", r.tenant,
                r.peer.c_str(), static_cast<unsigned long long>(r.frames),
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.shed),
                netio::close_reason_name(r.close_reason));
  }

  // ...and the runtime + gateway telemetry, scraped from one registry.
  const telemetry::Snapshot snap = reg.snapshot();
  std::printf("\ntenant 1: scored %llu  alerted %llu  swaps %llu\n",
              static_cast<unsigned long long>(
                  snap.counter_value("ingest.tenant1.scored")),
              static_cast<unsigned long long>(
                  snap.counter_value("ingest.tenant1.alerted")),
              static_cast<unsigned long long>(
                  snap.counter_value("ingest.tenant1.swaps_applied")));
  std::printf("tenant 2: scored %llu  alerted %llu  swaps %llu\n",
              static_cast<unsigned long long>(
                  snap.counter_value("ingest.tenant2.scored")),
              static_cast<unsigned long long>(
                  snap.counter_value("ingest.tenant2.alerted")),
              static_cast<unsigned long long>(
                  snap.counter_value("ingest.tenant2.swaps_applied")));
  std::printf("gateway : conns %llu  frames %llu  protocol errors %llu  "
              "shed %llu\n",
              static_cast<unsigned long long>(
                  snap.counter_value("frontend.conn.accepted")),
              static_cast<unsigned long long>(
                  snap.counter_value("frontend.frames")),
              static_cast<unsigned long long>(
                  snap.counter_value("frontend.protocol_errors")),
              static_cast<unsigned long long>(
                  snap.counter_value("frontend.shed")));
  std::printf("sink    : tenant1 alerts %zu, tenant2 alerts %zu "
              "(the swap shows up here)\n",
              sink.alerts(1), sink.alerts(2));
  return 0;
}
