// The deployment path: train a detector in the lab, persist the model and
// its feature normalizer to disk, then — as a separate "gateway process"
// would — load both back and score fresh traffic. Model persistence keeps
// predictions bit-identical across the save/load boundary.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/algorithms.h"
#include "eval/benchmark.h"
#include "ml/metrics.h"
#include "ml/persist.h"

int main() {
  using namespace lumen;
  const auto dir = std::filesystem::temp_directory_path() / "lumen_deploy";
  std::filesystem::create_directories(dir);
  const std::string model_path = (dir / "a14.model").string();
  const std::string norm_path = (dir / "a14.norm").string();

  // ---- Lab side: train A14 (Zeek features + RF) on the CTU Mirai set.
  std::printf("[lab] training A14 on F4 ...\n");
  eval::Benchmark::Options opts;
  opts.dataset_scale = 0.4;
  eval::Benchmark bench(opts);
  auto feats = bench.features("A14", "F4");
  if (!feats.ok()) {
    std::fprintf(stderr, "%s\n", feats.error().message.c_str());
    return 1;
  }
  auto [train, test] = eval::Benchmark::split_by_time(*feats.value(), 0.7);

  features::Normalizer norm(features::NormKind::kZScore);
  norm.fit(train);
  features::FeatureTable X = train;
  norm.apply(X);
  ml::RandomForest rf;
  rf.fit(X);

  {
    std::ofstream out(model_path);
    if (auto r = ml::save_model(rf, out); !r.ok()) {
      std::fprintf(stderr, "%s\n", r.error().message.c_str());
      return 1;
    }
    std::ofstream nout(norm_path);
    if (auto r = ml::save_normalizer(norm, nout); !r.ok()) {
      std::fprintf(stderr, "%s\n", r.error().message.c_str());
      return 1;
    }
  }
  std::printf("[lab] saved %s (%zu bytes) and %s\n", model_path.c_str(),
              static_cast<size_t>(std::filesystem::file_size(model_path)),
              norm_path.c_str());

  // ---- Gateway side: a fresh process would start here.
  std::printf("[gateway] loading artifacts ...\n");
  auto loaded_rf = ml::load_forest_file(model_path);
  std::ifstream nin(norm_path);
  auto loaded_norm = ml::load_normalizer(nin);
  if (!loaded_rf.ok() || !loaded_norm.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  features::FeatureTable T = test;
  loaded_norm.value().apply(T);
  const auto pred = loaded_rf.value().predict(T);
  const auto c = ml::confusion(T.labels, pred);
  std::printf("[gateway] scored %zu fresh connections: precision %.3f, "
              "recall %.3f\n",
              T.rows, ml::precision(c), ml::recall(c));

  // Sanity: the loaded model is bit-identical to the lab model.
  features::FeatureTable T2 = test;
  norm.apply(T2);
  const bool identical = rf.predict(T2) == pred;
  std::printf("loaded model predictions identical to lab model: %s\n",
              identical ? "yes" : "NO (bug!)");

  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
